"""Write-path tests: SPARQL Update, the delta overlay, MergeScan and compaction.

The core invariant (the PR's acceptance oracle): after *any* interleaving of
inserts and deletes — CS-matching subjects, novel-property subjects, deletes
from base and from the delta — SPARQL and SQL results, before and after
``compact()``, equal those of a store rebuilt from scratch on the final
triple set.  Updates never trigger an implicit rebuild, and every write
invalidates the plan cache.
"""

from __future__ import annotations

import pytest

from _datasets import EX, book_triples
from repro import RDFStore, StoreConfig
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.errors import ParseError, StorageError
from repro.model import EncodedTriple, IRI, Literal, Triple
from repro.model.terms import RDF_TYPE
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
    parse_update,
)
from repro.sparql.ast import DeleteDataOp, DeleteWhereOp, InsertDataOp

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

SCHEMES = [
    PlannerOptions(scheme=DEFAULT_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME),
    PlannerOptions(scheme=OPTIMIZED_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True),
]

QUERIES = [
    # star over one CS
    f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}",
    # constant-object lookup
    f"SELECT ?b WHERE {{ ?b <{EX}has_author> <{EX}author/1> . }}",
    # pushed-down range filter
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 1998) }}",
    # star-to-star join over the discovered FK
    f"SELECT ?b ?n WHERE {{ ?b <{EX}has_author> ?a . ?a <{EX}name> ?n . }}",
    # variable predicate (loose pattern)
    f"SELECT ?p ?o WHERE {{ <{EX}book/3> ?p ?o . }}",
    # aggregate
    f"SELECT (COUNT(?b) AS ?c) WHERE {{ ?b <{EX}isbn_no> ?i . }}",
]

SQL_QUERIES = [
    "SELECT isbn_no FROM Book WHERE in_year >= 1998 ORDER BY isbn_no",
    "SELECT b.isbn_no, a.name FROM Book b JOIN Person a ON b.has_author = a.id "
    "WHERE b.in_year >= 2000",
]


def _config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


@pytest.fixture()
def store() -> RDFStore:
    return RDFStore.build(book_triples(), config=_config())


def live_triples(store: RDFStore) -> list:
    """The store's visible triple set, reconstructed from delta bookkeeping
    (not from the query engine, which is what the oracle exercises)."""
    base = {tuple(int(v) for v in row) for row in store.matrix}
    base -= {tuple(int(v) for v in row) for row in store.delta.tombstone_matrix()}
    base |= {tuple(int(v) for v in row) for row in store.delta.matrix()}
    return [store.dictionary.decode_triple(EncodedTriple(*key)) for key in sorted(base)]


def _sort_rows(rows: list) -> list:
    # SQL NULL columns decode to None, which plain sorted() cannot compare
    return sorted(rows, key=lambda row: tuple((v is None, str(v)) for v in row))


def decoded(store: RDFStore, text: str, options=None) -> list:
    return _sort_rows(store.decode_rows(store.sparql(text, options)))


def assert_oracle_equivalent(store: RDFStore, queries=QUERIES, sql_queries=SQL_QUERIES):
    """Store results (every plan scheme) == a from-scratch rebuild's results."""
    oracle = RDFStore.build(live_triples(store), config=_config())
    for text in queries:
        expected = decoded(oracle, text)
        for options in SCHEMES:
            assert decoded(store, text, options) == expected, (text, options.describe())
    for text in sql_queries:
        expected = _sort_rows(oracle.decode_rows(oracle.sql(text)))
        assert _sort_rows(store.decode_rows(store.sql(text))) == expected, text


def insert_book(n: int, year: int = 2001, author: int = 1) -> str:
    return f"""
    INSERT DATA {{
      <{EX}book/new{n}> a <{EX}Book> ;
          <{EX}has_author> <{EX}author/{author}> ;
          <{EX}in_year> "{year}"^^<{XSD_INT}> ;
          <{EX}isbn_no> "isbn-n{n:04d}" .
    }}"""


class TestUpdateParser:
    def test_insert_data(self):
        request = parse_update(insert_book(1))
        assert len(request.operations) == 1
        op = request.operations[0]
        assert isinstance(op, InsertDataOp)
        assert len(op.triples) == 4
        assert all(isinstance(t, Triple) for t in op.triples)

    def test_delete_data_and_chaining(self):
        request = parse_update(
            f"DELETE DATA {{ <{EX}a> <{EX}p> <{EX}b> . }} ; "
            f"INSERT DATA {{ <{EX}a> <{EX}p> <{EX}c> . }} ;")
        assert [type(op) for op in request.operations] == [DeleteDataOp, InsertDataOp]

    def test_delete_where_patterns(self):
        request = parse_update(f"DELETE WHERE {{ ?b <{EX}isbn_no> ?i . ?b ?p ?o . }}")
        op = request.operations[0]
        assert isinstance(op, DeleteWhereOp)
        assert op.all_variables() == ["b", "i", "p", "o"]

    def test_prefixes_apply(self):
        request = parse_update(
            f"PREFIX ex: <{EX}> INSERT DATA {{ ex:s ex:p ex:o . }}")
        triple = request.operations[0].triples[0]
        assert triple.subject == IRI(f"{EX}s")

    @pytest.mark.parametrize("bad", [
        "INSERT DATA { ?s <http://ex/p> <http://ex/o> . }",  # variable in ground block
        "DELETE DATA { <http://ex/s> <http://ex/p> ?o . }",
        "DELETE WHERE { ?s ?p ?o . FILTER(?o >= 3) }",  # FILTER unsupported
        "INSERT { <http://ex/s> <http://ex/p> <http://ex/o> . }",  # not INSERT DATA
        "SELECT ?s WHERE { ?s ?p ?o }",  # a query is not an update
        "INSERT DATA { <http://ex/s> <http://ex/p> <http://ex/o> . } garbage",
        # truncated request: a dangling prologue after ';' must not be dropped
        "INSERT DATA { <http://ex/s> <http://ex/p> <http://ex/o> . } ; PREFIX ex: <http://ex/>",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_update(bad)


class TestOracleEquivalence:
    def test_insert_cs_matching_subject(self, store):
        result = store.update(insert_book(1))
        assert result.inserted == 4 and result.deleted == 0
        assert store.has_pending_updates()
        assert_oracle_equivalent(store)
        # the new subject is routed to the Book CS, not the leftover bucket
        new_oid = store.dictionary.lookup_term(IRI(f"{EX}book/new1"))
        assert store.delta.route_of(new_oid) is not None
        report = store.compact()
        assert report.subjects_assigned == 1 and report.subjects_leftover == 0
        assert new_oid in store.schema.subject_to_cs
        assert not store.has_pending_updates()
        assert_oracle_equivalent(store)

    def test_insert_novel_property_subject(self, store):
        store.update(f"""
        INSERT DATA {{
          <{EX}gadget/1> <{EX}weight> "12"^^<{XSD_INT}> ;
              <{EX}color> "red" .
        }}""")
        novel = f"SELECT ?g ?w WHERE {{ ?g <{EX}weight> ?w . ?g <{EX}color> ?c . }}"
        for options in SCHEMES:
            assert decoded(store, novel, options) == [(f"{EX}gadget/1", 12)]
        assert_oracle_equivalent(store, queries=QUERIES + [novel])
        new_oid = store.dictionary.lookup_term(IRI(f"{EX}gadget/1"))
        assert store.delta.route_of(new_oid) is None  # leftover routing
        report = store.compact()
        assert report.subjects_leftover == 1
        assert new_oid in store.schema.irregular_subjects
        for options in SCHEMES:
            assert decoded(store, novel, options) == [(f"{EX}gadget/1", 12)]

    def test_insert_property_on_existing_subject(self, store):
        # a second isbn for book/1: the delta carries a multi-value the CS
        # column cannot hold; answers must still merge it in
        store.update(f'INSERT DATA {{ <{EX}book/1> <{EX}isbn_no> "isbn-extra" . }}')
        lookup = f"SELECT ?i WHERE {{ <{EX}book/1> <{EX}isbn_no> ?i . }}"
        for options in SCHEMES:
            assert decoded(store, lookup, options) == [("isbn-0001",), ("isbn-extra",)]
        assert_oracle_equivalent(store)
        store.compact()
        assert_oracle_equivalent(store)
        # compaction refreshed the column statistics of the affected CS
        isbn_oid = store.dictionary.lookup_term(IRI(f"{EX}isbn_no"))
        book_cs = store.schema.tables[store.schema.subject_to_cs[
            store.dictionary.lookup_term(IRI(f"{EX}book/1"))]]
        assert book_cs.properties[isbn_oid].mean_multiplicity > 1.0

    def test_delete_from_base(self, store):
        result = store.update(
            f"DELETE DATA {{ <{EX}book/0> <{EX}has_author> <{EX}author/0> . }}")
        assert result.deleted == 1
        assert_oracle_equivalent(store)
        report = store.compact()
        assert report.applied_deletes == 1
        assert_oracle_equivalent(store)

    def test_delete_from_delta_and_resurrection(self, store):
        base_count = store.triple_count()
        # delta-only triple: insert then delete nets out to nothing
        store.update(insert_book(2))
        result = store.update(
            f'DELETE DATA {{ <{EX}book/new2> <{EX}isbn_no> "isbn-n0002" . }}')
        assert result.deleted == 1
        assert store.delta.insert_count() == 3 and store.delta.tombstone_count() == 0
        # resurrection: deleting a base triple then re-inserting drops the tombstone
        target = f"<{EX}book/4> <{EX}in_year> "
        year = '"1994"^^<' + XSD_INT + ">"
        store.update(f"DELETE DATA {{ {target} {year} . }}")
        assert store.delta.tombstone_count() == 1
        store.update(f"INSERT DATA {{ {target} {year} . }}")
        assert store.delta.tombstone_count() == 0
        assert_oracle_equivalent(store)
        store.compact()
        assert store.triple_count() == base_count + 3
        assert_oracle_equivalent(store)

    def test_delete_where_template(self, store):
        # remove every triple of author/2's books that carries an isbn
        result = store.update(
            f"DELETE WHERE {{ ?b <{EX}has_author> <{EX}author/2> . ?b <{EX}isbn_no> ?i . }}")
        assert result.deleted == 12  # 6 books x (has_author + isbn_no)
        # SPARQL is purely data-driven: full oracle equivalence holds.  The
        # SQL view is schema-mediated and the stripped subjects stay members
        # of the (now nullable) Book table until an explicit re-discovery, so
        # SQL is asserted to be stable across compaction instead.
        assert_oracle_equivalent(store, sql_queries=())
        before = _sort_rows(store.decode_rows(store.sql(SQL_QUERIES[0])))
        store.compact()
        assert_oracle_equivalent(store, sql_queries=())
        after = _sort_rows(store.decode_rows(store.sql(SQL_QUERIES[0])))
        assert before == after

    def test_delete_whole_subject(self, store):
        subject_oid = store.dictionary.lookup_term(IRI(f"{EX}book/5"))
        assert subject_oid in store.schema.subject_to_cs
        result = store.update(f"DELETE WHERE {{ <{EX}book/5> ?p ?o . }}")
        assert result.deleted == 4
        assert_oracle_equivalent(store)
        report = store.compact()
        assert report.subjects_removed == 1
        assert subject_oid not in store.schema.subject_to_cs
        assert_oracle_equivalent(store)

    def test_repeated_variable_pattern(self, store):
        # ?x <related> ?x must only bind self-referencing subjects — this is
        # load-bearing for DELETE WHERE, which instantiates its template from
        # the pattern's solutions
        store.update(f"""
        INSERT DATA {{
          <{EX}node/self> <{EX}related> <{EX}node/self> .
          <{EX}node/self> <{EX}related> <{EX}node/other> .
          <{EX}node/other> <{EX}related> <{EX}node/self> .
        }}""")
        loop_q = f"SELECT ?x WHERE {{ ?x <{EX}related> ?x . }}"
        for options in SCHEMES:
            assert decoded(store, loop_q, options) == [(f"{EX}node/self",)]
        store.compact()
        for options in SCHEMES:
            assert decoded(store, loop_q, options) == [(f"{EX}node/self",)]
        result = store.update(f"DELETE WHERE {{ ?x <{EX}related> ?x . }}")
        assert result.deleted == 1  # only the self-loop, not the other edges
        assert decoded(store, loop_q) == []
        assert len(decoded(store, f"SELECT ?a ?b WHERE {{ ?a <{EX}related> ?b . }}")) == 2
        assert_oracle_equivalent(store)

    def test_ground_delete_where(self, store):
        hit = store.update(
            f"DELETE WHERE {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . }}")
        assert hit.deleted == 1
        miss = store.update(
            f"DELETE WHERE {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . "
            f"<{EX}book/1> <{EX}isbn_no> \"isbn-0001\" . }}")
        # the first pattern no longer matches, so the whole ground BGP fails
        assert miss.deleted == 0
        assert_oracle_equivalent(store)

    def test_range_filter_sees_new_literal(self, store):
        store.update(insert_book(3, year=2010))
        rows = decoded(store, f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 2005) }}")
        assert (f"{EX}book/new3", 2010) in rows
        assert_oracle_equivalent(store)
        store.compact()
        assert_oracle_equivalent(store)

    def test_sql_optional_columns_unclustered_with_pending_delta(self):
        # ParseOrder baseline (cluster=False): a 0..1 column must not shrink
        # the result when a pending delta marks every SQL column optional —
        # the index-merge path has to seed from the union of property
        # subjects, not anchor on one of them
        triples = []
        for i in range(8):
            doc = IRI(f"{EX}doc/{i}")
            triples.append(Triple(doc, IRI(RDF_TYPE), IRI(f"{EX}Doc")))
            triples.append(Triple(doc, IRI(f"{EX}title"), Literal(f"T{i}")))
            if i < 6:
                triples.append(Triple(doc, IRI(f"{EX}abstract"), Literal(f"A{i}")))
        store = RDFStore.build(triples, config=_config(), cluster=False)
        sql = "SELECT title, abstract FROM Doc"
        before = _sort_rows(store.decode_rows(store.sql(sql)))
        store.update(f'INSERT DATA {{ <{EX}unrelated/1> <{EX}misc> "x" . }}')
        after = _sort_rows(store.decode_rows(store.sql(sql)))
        assert after == before
        assert len(after) == 8

    def test_order_by_with_pending_tail_literals(self, store):
        # "isbn-0010a" sorts between existing isbns but its OID lands at the
        # end of the dictionary; ORDER BY must rank by value, not OID —
        # compared UNSORTED against the oracle (ordering is the result here)
        store.update(f"""
        INSERT DATA {{
          <{EX}book/newo> a <{EX}Book> ;
              <{EX}has_author> <{EX}author/1> ;
              <{EX}in_year> "1997"^^<{XSD_INT}> ;
              <{EX}isbn_no> "isbn-0010a" .
        }}""")
        ordered_q = f"SELECT ?i WHERE {{ ?b <{EX}isbn_no> ?i . }} ORDER BY ?i LIMIT 13"
        desc_q = f"SELECT ?i WHERE {{ ?b <{EX}isbn_no> ?i . }} ORDER BY DESC(?i) LIMIT 3"
        sql_q = "SELECT isbn_no FROM Book WHERE in_year >= 1990 ORDER BY isbn_no"

        def check():
            oracle = RDFStore.build(live_triples(store), config=_config())
            for text in (ordered_q, desc_q):
                expected = oracle.decode_rows(oracle.sparql(text))
                for options in SCHEMES:
                    assert store.decode_rows(store.sparql(text, options)) == expected, text
            assert (store.decode_rows(store.sql(sql_q))
                    == oracle.decode_rows(oracle.sql(sql_q)))

        check()
        rows = store.decode_rows(store.sparql(ordered_q))
        assert rows.index(("isbn-0010a",)) == 11  # right after isbn-0010
        store.compact()
        check()

    def test_interleaved_rounds(self, store):
        rounds = [
            insert_book(10, year=2003, author=0),
            f"DELETE DATA {{ <{EX}book/2> <{EX}isbn_no> \"isbn-0002\" . }}",
            f"INSERT DATA {{ <{EX}thing/1> <{EX}shape> \"round\" . }}",
            f"DELETE WHERE {{ <{EX}book/7> ?p ?o . }}",
            insert_book(11, year=1991, author=3),
            f"DELETE DATA {{ <{EX}book/new10> <{EX}in_year> \"2003\"^^<{XSD_INT}> . }}",
        ]
        for text in rounds:
            store.update(text)
            assert_oracle_equivalent(store, sql_queries=())
        assert_oracle_equivalent(store)
        store.compact()
        assert_oracle_equivalent(store)
        # keep writing after compaction: the cycle must be repeatable
        store.update(insert_book(12, year=2012))
        store.update(f"DELETE WHERE {{ ?b <{EX}has_author> <{EX}author/3> . }}")
        assert_oracle_equivalent(store, sql_queries=SQL_QUERIES[:1])
        store.compact()
        assert_oracle_equivalent(store, sql_queries=SQL_QUERIES[:1])


class TestWriteDiscipline:
    def test_no_implicit_rebuild(self, store):
        clustered_before = store.clustered_store
        index_before = store.index_store
        context_before = store.context()
        store.update(insert_book(1))
        store.update(f"DELETE DATA {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . }}")
        assert store.clustered_store is clustered_before
        assert store.index_store is index_before
        assert store.context() is context_before
        store.compact()
        assert store.clustered_store is not clustered_before
        assert store.index_store is not index_before

    def test_every_write_invalidates_plan_cache(self, store):
        store.sparql(QUERIES[0])
        assert store.plan_cache_stats()["size"] >= 1
        store.update(insert_book(1))
        assert store.plan_cache_stats()["size"] == 0
        store.sparql(QUERIES[0])
        store.update(f"DELETE DATA {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . }}")
        assert store.plan_cache_stats()["size"] == 0

    def test_delete_where_unknown_term_is_noop(self, store):
        # a constant the store has never seen matches zero solutions — both
        # alone and as one pattern of a larger BGP, in every position
        assert store.update(
            f"DELETE WHERE {{ <{EX}book/777> ?p ?o . }}").deleted == 0
        assert store.update(
            f"DELETE WHERE {{ ?b <{EX}no_such_predicate> ?o . }}").deleted == 0
        assert store.update(
            f"DELETE WHERE {{ ?b <{EX}isbn_no> ?i . ?b <{EX}no_such_predicate> ?o . }}"
        ).deleted == 0
        assert not store.has_pending_updates()

    def test_unknown_term_select_returns_empty(self, store):
        # the planner's unknown-term shortcut must still bind the query's
        # variables (projection and filters reference them by name)
        queries = [
            f"SELECT ?p ?o WHERE {{ <{EX}book/777> ?p ?o . }}",
            f"SELECT ?b WHERE {{ ?b <{EX}no_such_predicate> ?o . }}",
            f"SELECT ?b ?i WHERE {{ ?b <{EX}isbn_no> ?i . ?b <{EX}nope> ?o . }}",
        ]
        for text in queries:
            for options in SCHEMES:
                assert len(store.sparql(text, options)) == 0, (text, options.describe())

    def test_failed_request_rolls_back_atomically(self, store):
        store.sparql(QUERIES[0])
        bad = (insert_book(7) + " ; DELETE DATA { <http://ex/s> <http://ex/p> ?v . }")
        with pytest.raises(ParseError):
            store.update(bad)  # parse error: nothing applied at all
        assert not store.has_pending_updates()
        # a request that fails mid-apply must roll back its earlier statements
        from repro.updates import UpdateApplier

        original = UpdateApplier._delete_data

        def exploding(self, operation):
            raise RuntimeError("mid-request failure")

        UpdateApplier._delete_data = exploding
        try:
            with pytest.raises(RuntimeError):
                store.update(insert_book(8) + " ; "
                             + f"DELETE DATA {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . }}")
        finally:
            UpdateApplier._delete_data = original
        assert not store.has_pending_updates()  # the insert was rolled back
        assert store.plan_cache_stats()["size"] == 0  # caches still invalidated
        assert_oracle_equivalent(store)

    def test_noop_update_counts(self, store):
        already = f'INSERT DATA {{ <{EX}book/0> <{EX}isbn_no> "isbn-0000" . }}'
        assert store.update(already).inserted == 0
        missing = f'DELETE DATA {{ <{EX}book/0> <{EX}isbn_no> "no-such" . }}'
        assert store.update(missing).deleted == 0
        assert not store.has_pending_updates()

    def test_live_triple_count(self, store):
        base = store.triple_count()
        store.update(insert_book(1))
        store.update(f"DELETE DATA {{ <{EX}book/0> <{EX}isbn_no> \"isbn-0000\" . }}")
        assert store.live_triple_count() == base + 4 - 1
        assert store.triple_count() == base  # base untouched until compaction
        store.compact()
        assert store.triple_count() == base + 3

    def test_cluster_with_pending_updates_raises(self, store):
        store.update(insert_book(1))
        with pytest.raises(StorageError, match="compact"):
            store.cluster()
        store.compact()
        store.cluster()  # fine again after compaction

    def test_warm_covers_delta_columns(self, store):
        store.update(insert_book(1))
        store.reset_cold()
        store.warm()
        segment = store.delta.index().tables["pso"].column("s").segment_id
        assert store.pool.contains(segment, 0)

    def test_superseded_delta_pages_are_evicted(self, store):
        store.update(insert_book(1))
        store.warm()
        old_segment = store.delta.index().tables["pso"].column("s").segment_id
        store.update(insert_book(2))
        store.delta.index()  # rebuild under the new version
        assert not store.pool.contains(old_segment, 0)

    def test_storage_summary_reports_pending(self, store):
        store.update(insert_book(1))
        summary = store.storage_summary()
        assert summary["pending_inserts"] == 4
        assert summary["pending_deletes"] == 0

    def test_compact_on_clean_store_is_noop(self, store):
        clustered_before = store.clustered_store
        report = store.compact()
        assert report.merged_inserts == 0 and report.applied_deletes == 0
        assert store.clustered_store is clustered_before

    def test_reload_with_pending_updates_raises(self, store):
        # acknowledged writes must never be dropped silently by a reload
        store.update(insert_book(1))
        with pytest.raises(StorageError, match="compact"):
            store.load(book_triples())
        store.compact()
        store.load(book_triples())  # fine once the delta is folded in


class TestStoreConfigValidation:
    @pytest.mark.parametrize("kwargs,fragment", [
        (dict(plan_cache_size=-1), "plan_cache_size"),
        (dict(page_size=0), "page_size"),
        (dict(buffer_pool_pages=0), "buffer_pool_pages"),
        (dict(zone_size=-5), "zone_size"),
        (dict(page_size="big"), "page_size"),
    ])
    def test_invalid_config_fails_eagerly(self, kwargs, fragment):
        with pytest.raises(StorageError, match=fragment):
            StoreConfig(**kwargs)

    def test_valid_config_passes(self):
        config = StoreConfig(plan_cache_size=0, page_size=64, zone_size=32)
        assert config.plan_cache_size == 0
