"""Shared deterministic test datasets.

A plain importable module (unlike ``conftest``, whose bare module name is
ambiguous when tests and benchmarks run in one pytest invocation) so test
files can use the canonical fixtures' data at import time without carrying
private copies.
"""

from __future__ import annotations

from repro.model import IRI, Literal, Triple
from repro.model.terms import RDF_TYPE, XSD_INTEGER

EX = "http://example.org/"


def book_triples(books: int = 30, authors: int = 5, with_irregular: bool = True):
    """A small, fully deterministic bibliographic graph used across tests."""
    triples = []
    type_pred = IRI(RDF_TYPE)
    for i in range(authors):
        author = IRI(f"{EX}author/{i}")
        triples.append(Triple(author, type_pred, IRI(f"{EX}Person")))
        triples.append(Triple(author, IRI(f"{EX}name"), Literal(f"Author {i}")))
    for i in range(books):
        book = IRI(f"{EX}book/{i}")
        triples.append(Triple(book, type_pred, IRI(f"{EX}Book")))
        triples.append(Triple(book, IRI(f"{EX}has_author"), IRI(f"{EX}author/{i % authors}")))
        triples.append(Triple(book, IRI(f"{EX}in_year"),
                              Literal(str(1990 + i % 15), datatype=XSD_INTEGER)))
        triples.append(Triple(book, IRI(f"{EX}isbn_no"), Literal(f"isbn-{i:04d}")))
    if with_irregular:
        page = IRI(f"{EX}webpage/1")
        triples.append(Triple(page, IRI(f"{EX}url"), Literal("index.php")))
        triples.append(Triple(page, IRI(f"{EX}content"), Literal("content.php")))
    return triples
