"""Tests for the benchmark substrate: generators, query texts and the harness."""

from datetime import date

import pytest

from repro.bench import (
    DblpConfig,
    DirtyConfig,
    TableOneConfig,
    TableOneHarness,
    TpchConfig,
    format_table_one,
    generate_dblp,
    generate_dirty,
    generate_rdfh_triples,
    generate_tpch,
    iter_reference_q3,
    iter_reference_q6,
    q3_sparql,
    q6_sparql,
    star_fk_hop_sparql,
    star_lookup_sparql,
    sub_order_keys,
    tpch_to_triples,
)
from repro.bench.rdfh import CLASS_LINEITEM, CLASS_ORDER, expected_subject_counts
from repro.bench.tpch import ORDER_DATE_END, ORDER_DATE_START, iter_lineitems_by_order
from repro.errors import BenchmarkError
from repro.sparql import parse_sparql


class TestTpchGenerator:
    def test_deterministic(self):
        a = generate_tpch(TpchConfig(scale_factor=0.0004))
        b = generate_tpch(TpchConfig(scale_factor=0.0004))
        assert a.customers == b.customers
        assert a.orders == b.orders
        assert a.lineitems == b.lineitems

    def test_row_counts_scale(self):
        small = generate_tpch(TpchConfig(scale_factor=0.0002))
        large = generate_tpch(TpchConfig(scale_factor=0.0008))
        assert large.row_counts()["customer"] > small.row_counts()["customer"]
        assert large.row_counts()["lineitem"] > small.row_counts()["lineitem"]

    def test_referential_integrity(self, tpch_tiny):
        customer_keys = {c.custkey for c in tpch_tiny.customers}
        order_keys = {o.orderkey for o in tpch_tiny.orders}
        assert all(o.custkey in customer_keys for o in tpch_tiny.orders)
        assert all(l.orderkey in order_keys for l in tpch_tiny.lineitems)

    def test_date_ranges_and_correlation(self, tpch_tiny):
        orders_by_key = {o.orderkey: o for o in tpch_tiny.orders}
        for line in tpch_tiny.lineitems:
            order = orders_by_key[line.orderkey]
            assert ORDER_DATE_START <= order.orderdate <= ORDER_DATE_END
            assert 1 <= (line.shipdate - order.orderdate).days <= 121

    def test_value_domains(self, tpch_tiny):
        for line in tpch_tiny.lineitems:
            assert 1 <= line.quantity <= 50
            assert 0.0 <= line.discount <= 0.10
            assert line.extendedprice > 0

    def test_reference_answers_nonempty(self, tpch_tiny):
        assert iter_reference_q6(tpch_tiny) > 0
        assert len(iter_reference_q3(tpch_tiny)) > 0

    def test_lineitems_by_order_grouping(self, tpch_tiny):
        groups = list(iter_lineitems_by_order(tpch_tiny))
        assert sum(len(lines) for _o, lines in groups) == len(tpch_tiny.lineitems)


class TestRdfhMapping:
    def test_triple_counts(self, tpch_tiny):
        triples = list(tpch_to_triples(tpch_tiny))
        expected = (len(tpch_tiny.customers) * 5 + len(tpch_tiny.orders) * 7
                    + len(tpch_tiny.lineitems) * 10)
        assert len(triples) == expected

    def test_subject_counts_per_class(self, tpch_tiny):
        triples = list(tpch_to_triples(tpch_tiny))
        counts = expected_subject_counts(tpch_tiny)
        by_class = {}
        for t in triples:
            if t.predicate.value.endswith("type"):
                by_class[t.object.value] = by_class.get(t.object.value, 0) + 1
        assert by_class[CLASS_ORDER] == counts[CLASS_ORDER]
        assert by_class[CLASS_LINEITEM] == counts[CLASS_LINEITEM]

    def test_generate_rdfh_triples_wrapper(self):
        triples = generate_rdfh_triples(scale_factor=0.0002)
        assert len(triples) > 100

    def test_sub_order_keys_labels(self):
        keys = sub_order_keys()
        assert set(keys) == {"Lineitem", "Order"}


class TestQueryTexts:
    @pytest.mark.parametrize("text", [
        q6_sparql(), q3_sparql(), star_lookup_sparql(), star_fk_hop_sparql(),
    ])
    def test_queries_parse(self, text):
        query = parse_sparql(text)
        assert query.patterns

    def test_q6_parameterization(self):
        text = q6_sparql(ship_year=1997, discount=0.05, quantity_limit=30)
        assert "1997-01-01" in text and "1998-01-01" in text
        assert "0.039" in text and "0.061" in text
        assert "30" in text

    def test_q3_parameterization(self):
        text = q3_sparql(segment="MACHINERY", cutoff=date(1996, 1, 1), limit=5)
        assert "MACHINERY" in text and "1996-01-01" in text and "LIMIT 5" in text


class TestOtherGenerators:
    def test_dblp_deterministic_and_sized(self):
        a = generate_dblp(DblpConfig(papers=50))
        b = generate_dblp(DblpConfig(papers=50))
        assert a == b
        assert len(a) > 150

    def test_dirty_ground_truth_accounting(self):
        dataset = generate_dirty(DirtyConfig(classes=3, subjects_per_class=30))
        assert dataset.regular_subject_count == 90
        assert dataset.regular_triple_count <= dataset.total_triples()
        assert len(dataset.class_of_subject) == 90


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        return TableOneHarness(TableOneConfig(scale_factor=0.0004))

    def test_stores_built_lazily_and_cached(self, harness):
        store = harness.store("Clustered")
        assert store is harness.store("Clustered")
        assert harness.store("ParseOrder").is_clustered is False
        with pytest.raises(BenchmarkError):
            harness.store("Nope")

    def test_unknown_query_rejected(self, harness):
        with pytest.raises(BenchmarkError):
            harness.query_text("Q99")

    def test_run_cell_and_grid(self, harness):
        cell = harness.run_cell("Q6", "rdfscan", "Clustered", True, "cold")
        assert cell.result_rows == 1
        assert cell.simulated_seconds > 0
        result = harness.run(queries=["Q6"])
        assert len(result.measurements) == len(TableOneHarness.CONFIGURATIONS) * 2
        table = format_table_one(result)
        assert "Q6 Cold" in table and "RDFscan" in table

    def test_expected_orderings_hold(self, harness):
        """The qualitative claims of Table I hold on the simulated cost metric."""
        result = harness.run(queries=["Q6"])

        def sim(scheme, ordering, zone_maps):
            cell = result.cell("Q6", scheme, ordering, zone_maps, "cold")
            return cell.simulated_seconds

        # clustering helps both schemes; RDFscan beats Default on the clustered store
        assert sim("default", "Clustered", False) <= sim("default", "ParseOrder", False)
        assert sim("rdfscan", "Clustered", False) <= sim("rdfscan", "ParseOrder", False)
        assert sim("rdfscan", "Clustered", False) <= sim("default", "Clustered", False)
        # hot runs never read pages
        for m in result.measurements:
            if m.cache_state == "hot":
                assert m.page_reads == 0

    def test_speedup_metric(self, harness):
        result = harness.run(queries=["Q6"])
        assert result.speedup("Q6") >= 1.0
