"""Tests for characteristic-set detection, generalization, typing,
relationships, fine-tuning, labeling and summarization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import DblpConfig, DirtyConfig, figure2_example, generate_dblp, generate_dirty
from repro.cs import (
    DiscoveryConfig,
    GeneralizationConfig,
    Multiplicity,
    PropertyKind,
    RelationshipConfig,
    TypingConfig,
    coverage_at_threshold,
    detect_characteristic_sets,
    detection_from_triples,
    discover_schema,
    discover_schema_from_property_sets,
    generalize,
    jaccard,
    summarize_by_keywords,
    summarize_by_support,
    support_histogram,
    top_k_summary,
)
from repro.cs.finetune import FinetuneConfig
from repro.model import IRI
from repro.storage import encode_graph, value_order_literals

EX = "http://example.org/dblp/schema/"


class TestDetection:
    def test_groups_by_exact_property_set(self):
        sets = {
            1: frozenset({10, 11}),
            2: frozenset({10, 11}),
            3: frozenset({10}),
        }
        result = detect_characteristic_sets(sets)
        assert len(result.exact_sets) == 2
        largest = result.sets_by_support()[0]
        assert largest.properties == frozenset({10, 11})
        assert largest.support == 2

    def test_detection_from_triples_counts_multiplicities(self):
        triples = [(1, 10, 100), (1, 10, 101), (1, 11, 102), (2, 10, 103)]
        result = detection_from_triples(triples)
        assert result.total_triples == 4
        assert result.property_multiplicities[1][10] == 2
        assert result.subject_properties[1] == frozenset({10, 11})

    def test_support_histogram_and_coverage(self):
        sets = {i: frozenset({1}) for i in range(8)}
        sets.update({100 + i: frozenset({2, 3}) for i in range(2)})
        result = detect_characteristic_sets(sets)
        histogram = support_histogram(result)
        assert histogram[8] == 1 and histogram[2] == 1
        assert coverage_at_threshold(result, 5) == pytest.approx(0.8)
        assert coverage_at_threshold(result, 1) == pytest.approx(1.0)


class TestGeneralization:
    def test_jaccard(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_similar_sets_merge_with_nullable_property(self):
        sets = {}
        for i in range(20):
            sets[i] = frozenset({1, 2, 3})
        for i in range(20, 26):
            sets[i] = frozenset({1, 2, 3, 4})  # same class, one extra property
        result = generalize(detect_characteristic_sets(sets),
                            GeneralizationConfig(min_support=3, minority_presence=0.1))
        assert len(result.generalized) == 1
        gcs = result.generalized[0]
        assert gcs.properties == frozenset({1, 2, 3, 4})
        assert gcs.property_presence[4] == pytest.approx(6 / 26)

    def test_dissimilar_sets_stay_separate(self):
        sets = {}
        for i in range(10):
            sets[i] = frozenset({1, 2, 3})
        for i in range(10, 20):
            sets[i] = frozenset({7, 8, 9})
        result = generalize(detect_characteristic_sets(sets), GeneralizationConfig(min_support=3))
        assert len(result.generalized) == 2

    def test_small_sets_attach_or_become_irregular(self):
        sets = {i: frozenset({1, 2, 3}) for i in range(10)}
        sets[100] = frozenset({1, 2})        # similar: attaches
        sets[101] = frozenset({50, 51, 52})  # alien: irregular
        result = generalize(detect_characteristic_sets(sets),
                            GeneralizationConfig(min_support=3, attach_similarity=0.5))
        assert 100 in result.subject_to_gcs
        assert 101 in result.irregular_subjects

    def test_rare_property_dropped_below_minority_threshold(self):
        sets = {i: frozenset({1, 2}) for i in range(50)}
        sets[50] = frozenset({1, 2, 3})  # property 3 occurs once in 51 subjects
        result = generalize(detect_characteristic_sets(sets),
                            GeneralizationConfig(min_support=3, minority_presence=0.1))
        assert result.generalized[0].properties == frozenset({1, 2})

    def test_max_tables_cap(self):
        sets = {}
        for cls in range(5):
            for i in range(10):
                sets[cls * 100 + i] = frozenset({cls * 10 + 1, cls * 10 + 2})
        result = generalize(detect_characteristic_sets(sets),
                            GeneralizationConfig(min_support=3, max_tables=2))
        assert len(result.generalized) == 2

    def test_degenerate_input_promotes_largest(self):
        sets = {1: frozenset({1}), 2: frozenset({2})}
        result = generalize(detect_characteristic_sets(sets), GeneralizationConfig(min_support=10))
        assert len(result.generalized) >= 1

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.integers(0, 200),
                           st.frozensets(st.integers(0, 12), min_size=1, max_size=6),
                           min_size=1, max_size=80))
    def test_partition_invariants_property(self, sets):
        """Every subject is either in exactly one generalized CS or irregular."""
        result = generalize(detect_characteristic_sets(sets), GeneralizationConfig(min_support=2))
        covered = set(result.subject_to_gcs)
        irregular = set(result.irregular_subjects)
        assert covered | irregular == set(sets)
        assert not (covered & irregular)
        member_lists = [set(g.subjects) for g in result.generalized]
        for i, members in enumerate(member_lists):
            for other in member_lists[i + 1:]:
                assert not (members & other)


def _dblp_schema(return_report=False, **kwargs):
    triples = generate_dblp(DblpConfig(papers=150, conferences=10, authors=50))
    dictionary, matrix = encode_graph(triples)
    matrix = value_order_literals(matrix, dictionary)
    config = DiscoveryConfig(generalization=GeneralizationConfig(min_support=3), **kwargs)
    out = discover_schema(matrix, dictionary, config, return_report=return_report)
    if return_report:
        return out[0], out[1], dictionary, matrix
    return out, dictionary, matrix


class TestFullDiscovery:
    def test_dblp_tables_and_foreign_keys(self):
        schema, dictionary, _matrix = _dblp_schema()
        labels = {t.label for t in schema.tables.values()}
        assert "Inproceedings" in labels
        assert "Person" in labels
        # partOf: Inproceedings -> Conference/Proceedings, creator -> Person
        part_of = dictionary.lookup_term(IRI(EX + "partOf"))
        creator = dictionary.lookup_term(IRI(EX + "creator"))
        fk_preds = {fk.predicate_oid for fk in schema.foreign_keys}
        assert part_of in fk_preds
        assert creator in fk_preds

    def test_dblp_coverage_is_high(self):
        schema, _dictionary, _matrix = _dblp_schema()
        assert schema.coverage.triple_coverage() > 0.85
        assert schema.coverage.subject_coverage() > 0.85

    def test_property_kinds(self):
        schema, dictionary, _matrix = _dblp_schema()
        issued = dictionary.lookup_term(IRI(EX + "issued"))
        title = dictionary.lookup_term(IRI(EX + "title"))
        kinds = {}
        for table in schema.tables.values():
            for prop, spec in table.properties.items():
                kinds[(table.label, prop)] = spec.kind
        assert any(prop == issued and kind is PropertyKind.INTEGER for (_l, prop), kind in kinds.items())
        assert any(prop == title and kind is PropertyKind.STRING for (_l, prop), kind in kinds.items())

    def test_multiplicity_classification(self):
        # lower the MANY threshold so the ~40% two-creator papers classify creator as 0..n
        schema, dictionary, _matrix = _dblp_schema(finetune=FinetuneConfig(many_multiplicity_threshold=1.25))
        creator = dictionary.lookup_term(IRI(EX + "creator"))
        inproc = next(t for t in schema.tables.values() if t.label == "Inproceedings")
        assert inproc.properties[creator].multiplicity is Multiplicity.MANY
        assert inproc.properties[creator].mean_multiplicity > 1.25
        title = dictionary.lookup_term(IRI(EX + "title"))
        assert inproc.properties[title].multiplicity in (Multiplicity.EXACTLY_ONE, Multiplicity.ZERO_OR_ONE)

    def test_indirect_support_counts_incoming_references(self):
        schema, _dictionary, _matrix = _dblp_schema()
        person = next(t for t in schema.tables.values() if t.label == "Person")
        assert person.indirect_support > 0

    def test_subject_to_cs_consistency(self):
        schema, _dictionary, _matrix = _dblp_schema()
        for cs_id, table in schema.tables.items():
            for subject in table.subjects:
                assert schema.subject_to_cs[subject] == cs_id

    def test_figure2_example_structure(self):
        dictionary, matrix = encode_graph(figure2_example())
        # at support >= 2 only the three inproceedings form a table; the venues
        # and the web page fall out of the regular schema (Fig. 2's irregular part)
        schema = discover_schema(matrix, dictionary,
                                 DiscoveryConfig(generalization=GeneralizationConfig(min_support=2)))
        labels = {t.label for t in schema.tables.values()}
        assert "Inproceedings" in labels
        webpage = dictionary.lookup_term(IRI("http://example.org/dblp/webpage1"))
        assert schema.cs_of_subject(webpage) is None
        assert schema.coverage.triple_coverage() < 1.0
        # at support >= 1 the venue table (conf1/conf2 merged by generalization)
        # appears as well, connected over the partOf foreign key
        permissive = discover_schema(matrix, dictionary,
                                     DiscoveryConfig(generalization=GeneralizationConfig(min_support=1)))
        assert len(permissive.tables) >= 2
        part_of = dictionary.lookup_term(IRI(EX + "partOf"))
        assert any(fk.predicate_oid == part_of for fk in permissive.foreign_keys)

    def test_typed_variant_splitting(self):
        triples = generate_dblp(DblpConfig(papers=60, conferences=6, authors=20))
        dictionary, matrix = encode_graph(triples)
        base = discover_schema(matrix, dictionary,
                               DiscoveryConfig(generalization=GeneralizationConfig(min_support=3)))
        split = discover_schema(matrix, dictionary,
                                DiscoveryConfig(generalization=GeneralizationConfig(min_support=3),
                                                typing=TypingConfig(split_variants=True)))
        assert len(split.tables) >= len(base.tables)

    def test_discover_from_property_sets_only(self):
        sets = {i: frozenset({1, 2, 3}) for i in range(10)}
        schema = discover_schema_from_property_sets(sets)
        assert len(schema.tables) == 1
        assert schema.coverage.subject_coverage() == 1.0

    def test_tables_with_properties_lookup(self):
        schema, dictionary, _matrix = _dblp_schema()
        title = dictionary.lookup_term(IRI(EX + "title"))
        issued = dictionary.lookup_term(IRI(EX + "issued"))
        tables = schema.tables_with_properties([title, issued])
        assert all(frozenset({title, issued}) <= t.property_oids() for t in tables)
        assert len(tables) >= 1


class TestDirtyDataCoverage:
    def test_coverage_tracks_ground_truth(self):
        dataset = generate_dirty(DirtyConfig(classes=4, subjects_per_class=60))
        dictionary, matrix = encode_graph(dataset.triples)
        schema = discover_schema(matrix, dictionary,
                                 DiscoveryConfig(generalization=GeneralizationConfig(min_support=5)))
        regular_fraction = dataset.regular_triple_count / dataset.total_triples()
        coverage = schema.coverage.triple_coverage()
        # discovered coverage should capture most of the known-regular part
        assert coverage >= 0.8 * regular_fraction
        assert len(schema.tables) >= 3

    def test_more_noise_means_lower_coverage(self):
        clean = generate_dirty(DirtyConfig(classes=3, subjects_per_class=50,
                                           noise_triples=0.0, chaotic_subjects=0, dropout=0.0))
        noisy = generate_dirty(DirtyConfig(classes=3, subjects_per_class=50,
                                           noise_triples=0.3, chaotic_subjects=60, dropout=0.3))
        coverages = []
        for dataset in (clean, noisy):
            dictionary, matrix = encode_graph(dataset.triples)
            schema = discover_schema(matrix, dictionary,
                                     DiscoveryConfig(generalization=GeneralizationConfig(min_support=5)))
            coverages.append(schema.coverage.triple_coverage())
        assert coverages[0] > coverages[1]


class TestSummarization:
    def test_summary_by_support_keeps_referenced_tables(self):
        schema, _dictionary, _matrix = _dblp_schema()
        biggest = schema.tables_by_support()[0]
        summary = summarize_by_support(schema, min_total_support=biggest.total_support())
        # tables referenced from the kept table are pulled in too
        assert biggest.cs_id in summary.table_ids
        for fk in schema.foreign_keys_from(biggest.cs_id):
            assert fk.target_cs in summary.table_ids

    def test_summary_by_keywords(self):
        schema, _dictionary, _matrix = _dblp_schema()
        summary = summarize_by_keywords(schema, ["inproceedings"], hops=1)
        assert summary.table_count() >= 1
        labels = {schema.tables[cs_id].label for cs_id in summary.table_ids}
        assert "Inproceedings" in labels

    def test_top_k(self):
        schema, _dictionary, _matrix = _dblp_schema()
        summary = top_k_summary(schema, 1)
        assert summary.table_count() == 1
        assert summary.foreign_keys == [fk for fk in schema.foreign_keys
                                        if fk.source_cs in summary.table_ids
                                        and fk.target_cs in summary.table_ids]

    def test_keyword_miss_returns_empty(self):
        schema, _dictionary, _matrix = _dblp_schema()
        summary = summarize_by_keywords(schema, ["zzz-no-such-table"])
        assert summary.table_count() == 0


class TestFinetuneConfigEffects:
    def test_prune_low_support(self):
        sets = {i: frozenset({1, 2}) for i in range(20)}
        sets.update({100 + i: frozenset({5, 6}) for i in range(3)})
        detection = detect_characteristic_sets(sets)
        config = DiscoveryConfig(
            generalization=GeneralizationConfig(min_support=2),
            finetune=FinetuneConfig(min_total_support=10),
        )
        matrix = np.asarray([(s, p, 1000 + p) for s, props in sets.items() for p in props],
                            dtype=np.int64)
        schema = discover_schema(matrix, dictionary=None, config=config)
        assert len(schema.tables) == 1
        assert detection.total_subjects() == 23
