"""Unit tests for the RDF term model."""

from datetime import date, datetime

import pytest
from hypothesis import given, strategies as st

from repro.model import BNode, IRI, Literal, literal_from_python, term_sort_key
from repro.model.terms import (
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_INTEGER,
    XSD_STRING,
    escape_literal,
    unescape_literal,
)


class TestIRI:
    def test_n3_wraps_in_angle_brackets(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_empty_iri_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_local_name_after_slash(self):
        assert IRI("http://example.org/vocab/name").local_name() == "name"

    def test_local_name_after_hash(self):
        assert IRI("http://example.org/vocab#age").local_name() == "age"

    def test_namespace(self):
        assert IRI("http://example.org/vocab#age").namespace() == "http://example.org/vocab#"

    def test_equality_and_hash(self):
        assert IRI("http://a") == IRI("http://a")
        assert hash(IRI("http://a")) == hash(IRI("http://a"))
        assert IRI("http://a") != IRI("http://b")

    def test_ordering(self):
        assert IRI("http://a") < IRI("http://b")

    def test_is_flags(self):
        term = IRI("http://a")
        assert term.is_iri and not term.is_literal and not term.is_bnode


class TestBNode:
    def test_n3(self):
        assert BNode("b1").n3() == "_:b1"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_ordering(self):
        assert BNode("a") < BNode("b")


class TestLiteral:
    def test_plain_literal_n3(self):
        assert Literal("hello").n3() == '"hello"'

    def test_language_literal_n3(self):
        assert Literal("hallo", language="de").n3() == '"hallo"@de'

    def test_typed_literal_n3(self):
        assert Literal("5", datatype=XSD_INTEGER).n3() == f'"5"^^<{XSD_INTEGER}>'

    def test_string_datatype_suppressed_in_n3(self):
        assert Literal("x", datatype=XSD_STRING).n3() == '"x"'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_to_python_integer(self):
        assert Literal("42", datatype=XSD_INTEGER).to_python() == 42

    def test_to_python_decimal(self):
        assert Literal("3.5", datatype=XSD_DECIMAL).to_python() == pytest.approx(3.5)

    def test_to_python_boolean(self):
        assert Literal("true", datatype=XSD_BOOLEAN).to_python() is True
        assert Literal("false", datatype=XSD_BOOLEAN).to_python() is False

    def test_to_python_date(self):
        assert Literal("1995-03-15", datatype=XSD_DATE).to_python() == date(1995, 3, 15)

    def test_to_python_datetime(self):
        value = Literal("1995-03-15T10:30:00", datatype=XSD_DATETIME).to_python()
        assert isinstance(value, datetime)

    def test_to_python_malformed_falls_back_to_text(self):
        assert Literal("not-a-number", datatype=XSD_INTEGER).to_python() == "not-a-number"

    def test_effective_datatype_defaults_to_string(self):
        assert Literal("x").effective_datatype() == XSD_STRING

    def test_numeric_sort_order(self):
        values = [Literal(str(v), datatype=XSD_INTEGER) for v in (10, 2, 33)]
        assert sorted(values) == [values[1], values[0], values[2]]

    def test_date_sort_order(self):
        early = Literal("1994-01-01", datatype=XSD_DATE)
        late = Literal("1995-01-01", datatype=XSD_DATE)
        assert early < late

    def test_numbers_sort_before_strings(self):
        assert Literal("5", datatype=XSD_INTEGER) < Literal("abc")


class TestEscaping:
    def test_escape_specials(self):
        assert escape_literal('a"b\nc\\d') == 'a\\"b\\nc\\\\d'

    def test_unescape_round_trip(self):
        original = 'tab\tnewline\nquote"backslash\\'
        assert unescape_literal(escape_literal(original)) == original

    def test_unescape_unicode(self):
        assert unescape_literal("\\u00e9") == "é"

    @given(st.text(max_size=200))
    def test_escape_unescape_round_trip_property(self, text):
        assert unescape_literal(escape_literal(text)) == text


class TestTermSortKey:
    def test_iris_before_bnodes_before_literals(self):
        iri_key = term_sort_key(IRI("http://z"))
        bnode_key = term_sort_key(BNode("a"))
        literal_key = term_sort_key(Literal("a"))
        assert iri_key < bnode_key < literal_key

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            term_sort_key("not a term")


class TestLiteralFromPython:
    @pytest.mark.parametrize("value, datatype", [
        (5, XSD_INTEGER),
        (2.5, "http://www.w3.org/2001/XMLSchema#double"),
        (True, XSD_BOOLEAN),
        (date(2020, 1, 1), XSD_DATE),
    ])
    def test_datatypes(self, value, datatype):
        literal = literal_from_python(value)
        assert literal.datatype == datatype

    def test_round_trip_values(self):
        assert literal_from_python(7).to_python() == 7
        assert literal_from_python(False).to_python() is False
        assert literal_from_python(date(1999, 12, 31)).to_python() == date(1999, 12, 31)

    def test_string_stays_plain(self):
        assert literal_from_python("hello").datatype is None
