"""Tests for the SPARQL parser, planner and end-to-end query execution."""

import pytest

from repro import PlannerOptions
from repro.errors import ParseError
from repro.model import IRI, Literal
from repro.model.terms import RDF_TYPE, XSD_DATE, XSD_INTEGER
from repro.sparql import parse_sparql
from repro.sparql.ast import Variable
from repro.sparql.planner import DEFAULT_SCHEME, RDFSCAN_SCHEME
from repro.engine import RDFJoinOp, RDFScanOp

EX = "http://example.org/"


class TestParser:
    def test_simple_select(self):
        q = parse_sparql(f"SELECT ?a WHERE {{ ?b <{EX}has_author> ?a . }}")
        assert q.select_variables == ["a"]
        assert len(q.patterns) == 1
        assert q.patterns[0].predicate == IRI(EX + "has_author")

    def test_prefixes_and_a_keyword(self):
        q = parse_sparql(f"PREFIX ex: <{EX}> SELECT ?s WHERE {{ ?s a ex:Book . }}")
        assert q.patterns[0].predicate == IRI(RDF_TYPE)
        assert q.patterns[0].object == IRI(EX + "Book")

    def test_predicate_object_lists(self):
        q = parse_sparql(f"PREFIX ex: <{EX}> SELECT * WHERE {{ ?s ex:p1 ?a ; ex:p2 ?b, ?c . }}")
        assert len(q.patterns) == 3
        assert q.select_variables == ["s", "a", "b", "c"]

    def test_filters(self):
        q = parse_sparql(
            f'PREFIX ex: <{EX}> SELECT ?y WHERE {{ ?b ex:year ?y . '
            f'FILTER(?y >= "1994"^^<{XSD_INTEGER}> && ?y < "1999"^^<{XSD_INTEGER}>) }}')
        assert len(q.filters) == 2
        assert q.filters[0].op == ">="
        assert q.filters[1].op == "<"

    def test_filter_reversed_operands(self):
        q = parse_sparql(f'PREFIX ex: <{EX}> SELECT ?y WHERE {{ ?b ex:year ?y . FILTER(3 < ?y) }}')
        assert q.filters[0].op == ">"
        assert q.filters[0].variable == "y"

    def test_aggregates_group_order_limit(self):
        q = parse_sparql(
            f"PREFIX ex: <{EX}> "
            "SELECT ?g (SUM(?p * (1 - ?d)) AS ?rev) WHERE { ?s ex:g ?g . ?s ex:p ?p . ?s ex:d ?d . } "
            "GROUP BY ?g ORDER BY DESC(?rev) ?g LIMIT 5")
        assert q.aggregates[0].func == "sum"
        assert q.aggregates[0].alias == "rev"
        assert q.group_by == ["g"]
        assert q.order_by[0].descending is True
        assert q.order_by[1].variable == "g"
        assert q.limit == 5
        assert q.output_names() == ["g", "rev"]

    def test_distinct(self):
        q = parse_sparql(f"SELECT DISTINCT ?a WHERE {{ ?a <{EX}p> ?b . }}")
        assert q.distinct

    def test_literals(self):
        q = parse_sparql(
            f'SELECT ?s WHERE {{ ?s <{EX}p> "plain" . ?s <{EX}q> "x"@en . '
            f'?s <{EX}r> "2001-01-01"^^<{XSD_DATE}> . ?s <{EX}t> 5 . ?s <{EX}u> true . }}')
        objects = [p.object for p in q.patterns]
        assert Literal("plain") in objects
        assert Literal("x", language="en") in objects
        assert Literal("2001-01-01", datatype=XSD_DATE) in objects
        assert any(isinstance(o, Literal) and o.lexical == "5" for o in objects)

    @pytest.mark.parametrize("bad", [
        "SELECT WHERE { ?s ?p ?o . }",
        "SELECT ?s { ?s ?p ?o . }",
        "SELECT ?s WHERE { ?s ?p . }",
        "SELECT ?s WHERE { ?s ?p ?o . ",
        'SELECT ?s WHERE { "lit" <http://x> ?o . }',
        "SELECT ?s WHERE { ?s pre:fix ?o . }",
        "SELECT ?s WHERE { ?s <http://x> ?o . } LIMIT abc",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_sparql(bad)

    def test_select_star_collects_variables(self):
        q = parse_sparql(f"SELECT * WHERE {{ ?s <{EX}p> ?o . }}")
        assert q.select_variables == ["s", "o"]

    def test_variable_dataclass(self):
        assert str(Variable("x")) == "?x"


QUERY_AUTHORS = f"""
PREFIX ex: <{EX}>
SELECT ?a ?n WHERE {{
  ?b ex:has_author ?a .
  ?b ex:in_year ?y .
  ?b ex:isbn_no ?n .
  FILTER(?y >= "1995"^^<{XSD_INTEGER}> && ?y <= "1999"^^<{XSD_INTEGER}>)
}}
"""

QUERY_JOIN = f"""
PREFIX ex: <{EX}>
SELECT ?n ?aname WHERE {{
  ?b ex:has_author ?a .
  ?b ex:isbn_no ?n .
  ?a ex:name ?aname .
}}
"""

QUERY_AGG = f"""
PREFIX ex: <{EX}>
SELECT ?aname (COUNT(?b) AS ?books) WHERE {{
  ?b ex:has_author ?a .
  ?a ex:name ?aname .
}} GROUP BY ?aname ORDER BY DESC(?books) ?aname
"""


class TestExecution:
    @pytest.mark.parametrize("scheme", [DEFAULT_SCHEME, RDFSCAN_SCHEME])
    @pytest.mark.parametrize("zone_maps", [False, True])
    def test_filtered_star_all_schemes_agree(self, book_store, scheme, zone_maps):
        result = book_store.sparql(QUERY_AUTHORS, PlannerOptions(scheme=scheme, use_zone_maps=zone_maps))
        baseline = book_store.sparql(QUERY_AUTHORS, PlannerOptions(scheme=DEFAULT_SCHEME))
        assert result.bindings.to_set(["a", "n"]) == baseline.bindings.to_set(["a", "n"])
        assert len(result) > 0

    def test_cross_star_join(self, book_store):
        default = book_store.sparql(QUERY_JOIN, PlannerOptions(scheme=DEFAULT_SCHEME))
        rdfscan = book_store.sparql(QUERY_JOIN, PlannerOptions(scheme=RDFSCAN_SCHEME))
        assert default.bindings.to_set(["n", "aname"]) == rdfscan.bindings.to_set(["n", "aname"])
        # 30 books, each with exactly one isbn/author pair
        assert len(default) == 30

    def test_rdfjoin_used_for_fk_connected_stars(self, book_store):
        plan = book_store.sparql_plan(QUERY_JOIN, PlannerOptions(scheme=RDFSCAN_SCHEME))
        names = plan.operator_names()
        assert names.get("RDFScanOp", 0) >= 1
        assert names.get("RDFJoinOp", 0) >= 1

    def test_default_plan_uses_index_joins(self, book_store):
        plan = book_store.sparql_plan(QUERY_AUTHORS, PlannerOptions(scheme=DEFAULT_SCHEME))
        names = plan.operator_names()
        assert names.get("NestedLoopIndexJoinOp", 0) == 2
        assert plan.count_joins() == 2

    def test_rdfscan_plan_has_no_star_joins(self, book_store):
        plan = book_store.sparql_plan(QUERY_AUTHORS, PlannerOptions(scheme=RDFSCAN_SCHEME))
        assert plan.count_joins() == 0

    def test_aggregation_and_ordering(self, book_store):
        result = book_store.sparql(QUERY_AGG, PlannerOptions(scheme=RDFSCAN_SCHEME))
        rows = book_store.decode_rows(result)
        # 30 books over 5 authors -> 6 each; ties broken by name ascending
        assert [row[1] for row in rows] == [6.0] * 5
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)

    def test_unknown_term_yields_empty_result(self, book_store):
        query = f"SELECT ?s WHERE {{ ?s <{EX}no_such_predicate> ?o . }}"
        result = book_store.sparql(query)
        assert len(result) == 0

    def test_unsatisfiable_filter_yields_empty_result(self, book_store):
        query = (f'PREFIX ex: <{EX}> SELECT ?b WHERE {{ ?b ex:in_year ?y . '
                 f'FILTER(?y > "3000"^^<{XSD_INTEGER}>) }}')
        assert len(book_store.sparql(query)) == 0

    def test_equality_filter(self, book_store):
        query = (f'PREFIX ex: <{EX}> SELECT ?b WHERE {{ ?b ex:isbn_no ?n . '
                 f'FILTER(?n = "isbn-0003") }}')
        for scheme in (DEFAULT_SCHEME, RDFSCAN_SCHEME):
            result = book_store.sparql(query, PlannerOptions(scheme=scheme))
            assert len(result) == 1

    def test_not_equal_filter(self, book_store):
        query = (f'PREFIX ex: <{EX}> SELECT ?b ?n WHERE {{ ?b ex:isbn_no ?n . '
                 f'FILTER(?n != "isbn-0003") }}')
        result = book_store.sparql(query)
        assert len(result) == 29

    def test_distinct_projection(self, book_store):
        query = f"PREFIX ex: <{EX}> SELECT DISTINCT ?a WHERE {{ ?b ex:has_author ?a . }}"
        result = book_store.sparql(query)
        assert len(result) == 5

    def test_constant_subject_pattern(self, book_store):
        query = f"SELECT ?n WHERE {{ <{EX}book/3> <{EX}isbn_no> ?n . }}"
        rows = book_store.decode_rows(book_store.sparql(query))
        assert rows == [("isbn-0003",)]

    def test_bound_object_pattern(self, book_store):
        query = (f"PREFIX ex: <{EX}> SELECT ?b WHERE {{ ?b ex:has_author <{EX}author/1> . "
                 f"?b ex:in_year ?y . }}")
        default = book_store.sparql(query, PlannerOptions(scheme=DEFAULT_SCHEME))
        rdfscan = book_store.sparql(query, PlannerOptions(scheme=RDFSCAN_SCHEME))
        assert default.bindings.to_set(["b"]) == rdfscan.bindings.to_set(["b"])
        assert len(default) == 6

    def test_parse_order_store_answers_identically(self, rdfh_store, rdfh_parseorder_store):
        from repro.bench import q6_sparql
        clustered = rdfh_store.sparql(q6_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME))
        parse_order = rdfh_parseorder_store.sparql(q6_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME))
        assert clustered.bindings.column("revenue")[0] == pytest.approx(
            parse_order.bindings.column("revenue")[0])

    def test_costs_reported(self, book_store):
        book_store.reset_cold()
        result = book_store.sparql(QUERY_AUTHORS)
        assert result.cost.counters["page_reads"] > 0
        assert result.cost.simulated_seconds > 0
        assert result.cost.wall_seconds > 0
