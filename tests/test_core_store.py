"""End-to-end tests of the RDFStore facade."""

import pytest

from repro import PlannerOptions, RDFStore, StoreConfig
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.errors import StorageError
from repro.model import IRI, Literal, Triple
from repro.model.terms import XSD_INTEGER

EX = "http://example.org/"

NT_SAMPLE = "\n".join(
    [f'<{EX}b{i}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{EX}Book> .\n'
     f'<{EX}b{i}> <{EX}year> "{1990 + i}"^^<{XSD_INTEGER}> .\n'
     f'<{EX}b{i}> <{EX}title> "Book {i}" .' for i in range(12)]
)


class TestBuildPipeline:
    def test_build_from_ntriples_text(self):
        store = RDFStore.build(NT_SAMPLE)
        assert store.triple_count() == 36
        assert store.is_clustered
        assert store.schema is not None
        assert store.clustered_store is not None

    def test_build_without_clustering(self):
        store = RDFStore.build(NT_SAMPLE, cluster=False)
        assert not store.is_clustered
        assert store.clustered_store is None
        assert store.index_store is not None

    def test_staged_pipeline(self):
        store = RDFStore()
        assert store.load(NT_SAMPLE) == 36
        with pytest.raises(StorageError):
            store.require_schema()
        store.discover_schema()
        plan = store.cluster()
        assert plan is not None
        assert store.sparql(f"SELECT ?t WHERE {{ ?b <{EX}title> ?t . }}").bindings.num_rows == 12

    def test_discover_before_load_raises(self):
        with pytest.raises(StorageError):
            RDFStore().discover_schema()

    def test_duplicate_triples_dropped(self):
        triples = [Triple(IRI(EX + "s"), IRI(EX + "p"), Literal("x"))] * 3
        store = RDFStore()
        assert store.load(triples) == 1

    def test_sort_key_names_resolution(self):
        store = RDFStore()
        store.load(NT_SAMPLE)
        store.discover_schema(DiscoveryConfig(generalization=GeneralizationConfig(min_support=3)))
        plan = store.cluster(sort_key_names={"Book": f"{EX}year"})
        year_oid = store.dictionary.lookup_term(IRI(EX + "year"))
        assert year_oid in plan.sort_keys.values()
        block = store.clustered_store.blocks[0]
        assert year_oid in block.sorted_properties


class TestStoreBehaviour:
    def test_storage_summary_keys(self, book_store):
        summary = book_store.storage_summary()
        assert summary["clustered"] is True
        assert summary["tables"] >= 2
        assert 0.9 <= summary["triple_coverage"] <= 1.0
        assert "regular_fraction" in summary

    def test_schema_summary_lines(self, book_store):
        lines = book_store.schema_summary()
        assert any("Book" in line for line in lines)
        assert any("coverage" in line for line in lines)

    def test_cold_and_warm_control(self, book_store):
        book_store.reset_cold()
        assert book_store.pool.cached_page_count() == 0
        book_store.warm()
        assert book_store.pool.cached_page_count() > 0

    def test_cold_hot_costs_differ(self, book_store):
        query = f"PREFIX ex: <{EX}> SELECT ?n WHERE {{ ?b ex:isbn_no ?n . ?b ex:in_year ?y . }}"
        book_store.reset_cold()
        cold = book_store.sparql(query).cost
        book_store.warm()
        hot = book_store.sparql(query).cost
        assert cold.counters["page_reads"] > hot.counters["page_reads"]
        assert cold.simulated_seconds > hot.simulated_seconds

    def test_decode_rows(self, book_store):
        result = book_store.sparql(
            f"PREFIX ex: <{EX}> SELECT ?n WHERE {{ <{EX}book/1> ex:isbn_no ?n . }}")
        assert book_store.decode_rows(result) == [("isbn-0001",)]

    def test_config_disables_zone_maps(self):
        config = StoreConfig(build_zone_maps=False)
        store = RDFStore.build(NT_SAMPLE, config=config)
        assert all(not block.zone_maps for block in store.clustered_store.blocks)

    def test_dblp_store_fixture_summary(self, dblp_store):
        summary = dblp_store.storage_summary()
        assert summary["foreign_keys"] >= 2
        assert summary["triple_coverage"] > 0.85


class TestRdfhStore:
    def test_schema_has_three_tables(self, rdfh_store):
        labels = {t.label for t in rdfh_store.require_schema().tables.values()}
        assert {"Customer", "Order", "Lineitem"} <= labels

    def test_foreign_keys_follow_tpch(self, rdfh_store):
        schema = rdfh_store.require_schema()
        by_label = {t.label: cs_id for cs_id, t in schema.tables.items()}
        fk_pairs = {(fk.source_cs, fk.target_cs) for fk in schema.foreign_keys}
        assert (by_label["Lineitem"], by_label["Order"]) in fk_pairs
        assert (by_label["Order"], by_label["Customer"]) in fk_pairs

    def test_sub_ordering_applied(self, rdfh_store):
        from repro.bench.rdfh import P_L_SHIPDATE, P_O_ORDERDATE
        schema = rdfh_store.require_schema()
        store = rdfh_store.clustered_store
        shipdate = rdfh_store.dictionary.lookup_term(IRI(P_L_SHIPDATE))
        orderdate = rdfh_store.dictionary.lookup_term(IRI(P_O_ORDERDATE))
        lineitem_block = next(b for b in store.blocks if b.has_property(shipdate))
        order_block = next(b for b in store.blocks if b.has_property(orderdate))
        assert shipdate in lineitem_block.sorted_properties
        assert orderdate in order_block.sorted_properties

    def test_q6_matches_reference(self, rdfh_store, tpch_tiny):
        from repro.bench import iter_reference_q6, q6_sparql
        for scheme in ("default", "rdfscan"):
            for zone_maps in (False, True):
                result = rdfh_store.sparql(q6_sparql(), PlannerOptions(scheme=scheme,
                                                                       use_zone_maps=zone_maps))
                assert result.bindings.column("revenue")[0] == pytest.approx(
                    iter_reference_q6(tpch_tiny), rel=1e-9)

    def test_q3_matches_reference(self, rdfh_store, tpch_tiny):
        from repro.bench import iter_reference_q3, q3_sparql
        reference = iter_reference_q3(tpch_tiny)
        for scheme in ("default", "rdfscan"):
            result = rdfh_store.sparql(q3_sparql(), PlannerOptions(scheme=scheme, use_zone_maps=True))
            rows = rdfh_store.decode_rows(result)
            assert len(rows) == min(10, len(reference))
            if reference:
                assert rows[0][3] == pytest.approx(reference[0][1], rel=1e-9)
                assert rows[0][1] == reference[0][2]

    def test_q1_runs(self, rdfh_store):
        from repro.bench import q1_sparql
        result = rdfh_store.sparql(q1_sparql())
        assert 1 <= len(result) <= 6  # at most |returnflag| x |linestatus| groups
