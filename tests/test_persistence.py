"""Persistence layer: snapshot round trips, WAL crash recovery, lazy loading.

Three properties are exercised:

* **round-trip equivalence** — every query of the existing corpora answers
  identically on ``RDFStore.open(save(store))``, across all plan schemes,
  without the reopened store re-running discovery or clustering;
* **crash recovery** — truncating the WAL at arbitrary byte boundaries
  loses exactly the torn tail; replay matches a rebuild oracle that applies
  the same surviving prefix of updates to a fresh store;
* **lazy loading** — an opened store materializes columns on first scan,
  observable through ``BufferPool.stats()``.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    CheckpointReport,
    PendingUpdatesError,
    PersistenceError,
    RDFStore,
    StorageError,
    StoreConfig,
)
from repro.bench.queries import q6_sparql, star_lookup_sparql
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.persist import SnapshotReader, WriteAheadLog, write_snapshot
from repro.persist.snapshot import GENERATION_PREFIX, MANIFEST_FILE, wal_path
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
)

from _datasets import EX, book_triples

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

SCHEMES = [
    PlannerOptions(scheme=DEFAULT_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME),
    PlannerOptions(scheme=OPTIMIZED_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True),
]

QUERIES = [
    f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}",
    f"SELECT ?b WHERE {{ ?b <{EX}has_author> <{EX}author/1> . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 1998) }}",
    f"SELECT ?b ?n WHERE {{ ?b <{EX}has_author> ?a . ?a <{EX}name> ?n . }}",
    f"SELECT ?p ?o WHERE {{ <{EX}book/3> ?p ?o . }}",
    f"SELECT (COUNT(?b) AS ?c) WHERE {{ ?b <{EX}isbn_no> ?i . }}",
]

SQL_QUERIES = [
    "SELECT isbn_no FROM Book WHERE in_year >= 1998 ORDER BY isbn_no",
    "SELECT b.isbn_no, a.name FROM Book b JOIN Person a ON b.has_author = a.id "
    "WHERE b.in_year >= 2000",
]


def _config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


@pytest.fixture()
def store() -> RDFStore:
    return RDFStore.build(book_triples(), config=_config())


def _sort_rows(rows: list) -> list:
    return sorted(rows, key=lambda row: tuple((v is None, str(v)) for v in row))


def decoded(store: RDFStore, text: str, options=None) -> list:
    return _sort_rows(store.decode_rows(store.sparql(text, options)))


def assert_stores_equivalent(left: RDFStore, right: RDFStore,
                             queries=QUERIES, sql_queries=SQL_QUERIES) -> None:
    for text in queries:
        for options in SCHEMES:
            assert decoded(left, text, options) == decoded(right, text, options), \
                (text, options.describe())
    for text in sql_queries:
        assert _sort_rows(left.decode_rows(left.sql(text))) == \
            _sort_rows(right.decode_rows(right.sql(text))), text


def insert_book(n: int, year: int = 2001, author: int = 1) -> str:
    return f"""
    INSERT DATA {{
      <{EX}book/new{n}> a <{EX}Book> ;
          <{EX}has_author> <{EX}author/{author}> ;
          <{EX}in_year> "{year}"^^<{XSD_INT}> ;
          <{EX}isbn_no> "isbn-n{n:04d}" .
    }}"""


# -- snapshot round trips -----------------------------------------------------


class TestSnapshotRoundTrip:
    def test_book_corpus_identical_across_schemes(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        assert_stores_equivalent(store, reopened)

    def test_open_skips_discovery_and_clustering(self, store, tmp_path, monkeypatch):
        store.save(tmp_path / "db")
        import repro.core.store as core_store

        def _boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("open() re-ran a build stage")

        monkeypatch.setattr(core_store, "discover_schema", _boom)
        monkeypatch.setattr(core_store, "cluster_subjects", _boom)
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.is_clustered
        assert decoded(reopened, QUERIES[0]) == decoded(store, QUERIES[0])

    def test_schema_catalog_and_summaries_survive(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.schema_summary() == store.schema_summary()
        assert reopened.require_catalog().ddl_script() == store.require_catalog().ddl_script()
        assert len(reopened.dictionary) == len(store.dictionary)
        assert (reopened.dictionary.value_order_watermark
                == store.dictionary.value_order_watermark)
        left = store.storage_summary()
        right = reopened.storage_summary()
        for key in ("triples", "terms", "clustered", "tables", "foreign_keys",
                    "triple_coverage", "subject_coverage", "regular_fraction",
                    "irregular_triples"):
            assert left[key] == right[key], key

    def test_optimizer_behaves_identically(self, store, tmp_path):
        """The reopened store's plans — including cardinality estimates —
        must be byte-identical to the saved store's."""
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.plan_cache.generation == store.plan_cache.generation
        for text in QUERIES:
            original = store.explain(text, PlannerOptions(scheme=OPTIMIZED_SCHEME))
            restored = reopened.explain(text, PlannerOptions(scheme=OPTIMIZED_SCHEME))
            assert restored == original, text

    def test_dirty_literals_round_trip(self, tmp_path):
        from repro.model import IRI, Literal, Triple
        nasty = [
            Literal('quote " backslash \\ tab \t'),
            Literal("newline\nand\rreturn"),
            Literal("unicode é中文   sep"),
            Literal("typed", datatype=f"{EX}custom"),
            Literal("tagged", language="en-GB"),
        ]
        triples = book_triples()
        for i, lit in enumerate(nasty):
            triples.append(Triple(IRI(f"{EX}book/{i}"), IRI(f"{EX}note"), lit))
        original = RDFStore.build(triples, config=_config())
        original.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        query = f"SELECT ?b ?n WHERE {{ ?b <{EX}note> ?n . }}"
        assert decoded(reopened, query) == decoded(original, query)

    def test_dblp_round_trip(self, dblp_store, tmp_path):
        # write_snapshot (not save) keeps the shared session fixture detached
        write_snapshot(dblp_store, tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        from repro.bench.dblp import P_CREATOR, P_ISSUED, P_TITLE
        queries = [
            f"SELECT ?p ?t WHERE {{ ?p <{P_TITLE}> ?t . ?p <{P_ISSUED}> ?y . }}",
            f"SELECT ?p ?a WHERE {{ ?p <{P_CREATOR}> ?a . }}",
        ]
        assert_stores_equivalent(dblp_store, reopened, queries=queries, sql_queries=[])

    def test_rdfh_round_trip_with_zone_maps(self, rdfh_store, tmp_path):
        write_snapshot(rdfh_store, tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        queries = [q6_sparql(), star_lookup_sparql()]
        assert_stores_equivalent(rdfh_store, reopened, queries=queries, sql_queries=[])
        # the sub-ordering metadata that makes zone maps effective survives
        for block in rdfh_store.clustered_store.blocks:
            twin = reopened.clustered_store.block(block.cs_id)
            assert twin.sorted_properties == block.sorted_properties
            assert set(twin.zone_maps) == set(block.zone_maps)

    def test_reduced_schemas_survive(self, store, tmp_path):
        from repro.cs.summarize import SchemaSummary
        catalog = store.require_catalog()
        cs_ids = [table.cs_id for table in store.schema.tables_by_support()][:1]
        catalog.register_summary("core", SchemaSummary(table_ids=cs_ids, foreign_keys=[]))
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        assert (reopened.require_catalog().table_names("core")
                == catalog.table_names("core"))

    def test_open_into_reuses_instance(self, store, tmp_path):
        store.save(tmp_path / "db")
        target = RDFStore(_config())
        result = RDFStore.open(tmp_path / "db", into=target)
        assert result is target
        assert decoded(target, QUERIES[0]) == decoded(store, QUERIES[0])

    def test_unclustered_store_round_trip(self, tmp_path):
        original = RDFStore.build(book_triples(), config=_config(), cluster=False)
        original.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        assert not reopened.is_clustered
        assert decoded(reopened, QUERIES[0]) == decoded(original, QUERIES[0])


# -- lazy loading -------------------------------------------------------------


class TestLazyLoading:
    def test_nothing_materialized_at_open(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        stats = reopened.buffer_pool_stats()
        assert stats["lazy_segments_registered"] > 0
        assert stats["lazy_segments_materialized"] == 0
        assert all(not block.subject_column.is_materialized
                   for block in reopened.clustered_store.blocks)
        # the base matrix is lazy too, yet its row count is known
        assert reopened._matrix_data is None
        assert reopened.triple_count() == store.triple_count()
        assert reopened._matrix_data is None  # counting did not materialize
        # queries never need it; compaction does, and it loads on demand
        reopened.update(insert_book(1))
        reopened.compact()
        assert reopened.triple_count() == store.triple_count() + 4

    def test_first_scan_materializes_only_whats_needed(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        reopened.sparql(f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}",
                        PlannerOptions(scheme=RDFSCAN_SCHEME))
        stats = reopened.buffer_pool_stats()
        assert 0 < stats["lazy_segments_materialized"] < stats["lazy_segments_registered"]
        assert stats["lazy_values_loaded"] > 0

    def test_materialization_is_not_charged_as_page_reads(self, store, tmp_path):
        """Cold-run accounting must match a freshly built store: loading a
        column from disk is bookkept separately from simulated page misses."""
        query = f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}"
        store.save(tmp_path / "db")
        store.reset_cold()
        fresh_cost = store.sparql(query).cost.counters["page_reads"]
        reopened = RDFStore.open(tmp_path / "db")
        reopened.reset_cold()
        reopened_cost = reopened.sparql(query).cost.counters["page_reads"]
        assert reopened_cost == fresh_cost

    def test_explain_analyze_surfaces_buffer_stats(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        text = reopened.explain(QUERIES[0], analyze=True)
        assert "buffers:" in text
        assert "lazy_materialized=" in text

    def test_warm_and_cold_work_without_full_materialization(self, store, tmp_path):
        store.save(tmp_path / "db")
        reopened = RDFStore.open(tmp_path / "db")
        reopened.warm()  # page pre-load must not force arrays off disk
        assert reopened.buffer_pool_stats()["cached_pages"] > 0
        reopened.reset_cold()
        assert reopened.buffer_pool_stats()["cached_pages"] == 0
        assert decoded(reopened, QUERIES[0]) == decoded(store, QUERIES[0])


# -- WAL durability and crash recovery ---------------------------------------


class TestWriteAheadLog:
    def test_updates_append_to_attached_wal(self, store, tmp_path):
        store.save(tmp_path / "db")
        wal = WriteAheadLog.open(wal_path(tmp_path / "db"))
        assert wal.record_count() == 0
        store.update(insert_book(1))
        store.update(f"DELETE DATA {{ <{EX}book/1> <{EX}isbn_no> \"isbn-0001\" . }}")
        assert WriteAheadLog.open(wal_path(tmp_path / "db")).record_count() == 2

    def test_noop_updates_are_not_logged(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(f"DELETE DATA {{ <{EX}no/such> <{EX}p> <{EX}o> . }}")
        assert WriteAheadLog.open(wal_path(tmp_path / "db")).record_count() == 0

    def test_reopen_replays_pending_updates(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(insert_book(1))
        store.update(insert_book(2, year=1993))
        store.update(f"DELETE WHERE {{ ?b <{EX}in_year> \"1993\"^^<{XSD_INT}> . }}")
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.has_pending_updates()
        # generation parity holds even with post-save records to replay
        assert reopened.plan_cache.generation == store.plan_cache.generation
        assert_stores_equivalent(store, reopened)

    def test_save_with_pending_updates_seeds_the_wal(self, store, tmp_path):
        store.update(insert_book(7))
        info = store.save(tmp_path / "db")
        assert info.pending_updates_logged == 1
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.has_pending_updates()
        assert reopened.plan_cache.generation == store.plan_cache.generation
        assert_stores_equivalent(store, reopened)

    def test_failed_compaction_keeps_the_journal(self, store, tmp_path, monkeypatch):
        """If compaction dies midway, the journal must still hold the
        acknowledged texts so a later save() seeds them into the WAL."""
        import repro.updates.compaction as compaction_mod
        store.save(tmp_path / "db1")
        store.update(insert_book(1))

        def _boom(base, delta):
            raise MemoryError("simulated mid-compaction failure")

        monkeypatch.setattr(compaction_mod, "merge_matrices", _boom)
        with pytest.raises(MemoryError):
            store.compact()
        monkeypatch.undo()
        assert len(store.journal) == 1  # acknowledged update still journaled
        info = store.save(tmp_path / "db2")
        assert info.pending_updates_logged == 1
        reopened = RDFStore.open(tmp_path / "db2")
        assert_stores_equivalent(store, reopened)

    def test_net_zero_updates_do_not_survive_compaction_in_the_journal(self, store, tmp_path):
        """Insert-then-delete cancels out; after a (no-op) compact, a save
        must not re-seed the dead request texts into the fresh WAL."""
        triple = f"<{EX}book/tmp> <{EX}isbn_no> \"isbn-tmp\" ."
        store.update(f"INSERT DATA {{ {triple} }}")
        store.update(f"DELETE DATA {{ {triple} }}")
        assert not store.has_pending_updates()
        report = store.compact()
        assert report.merged_inserts == 0
        info = store.save(tmp_path / "db")
        assert info.pending_updates_logged == 0
        assert WriteAheadLog.open(wal_path(tmp_path / "db")).record_count() == 0

    def test_replay_survives_compaction_oid_remapping(self, store, tmp_path):
        """Logical (text) records stay valid even though compaction re-maps
        literal OIDs: replay against the older on-disk base is equivalent."""
        store.save(tmp_path / "db")
        store.update(insert_book(1, year=2040))  # new literal, post-watermark
        store.compact()                          # re-maps it into value order
        store.update(insert_book(2, year=2041))
        reopened = RDFStore.open(tmp_path / "db")
        assert_stores_equivalent(store, reopened)


class TestCrashRecovery:
    def _updates(self):
        return [
            insert_book(1),
            insert_book(2, year=1993),
            f"DELETE DATA {{ <{EX}book/2> <{EX}isbn_no> \"isbn-0002\" . }}",
            insert_book(3, author=4),
            f"DELETE WHERE {{ ?b <{EX}in_year> \"1993\"^^<{XSD_INT}> . }}",
            insert_book(4, year=2012),
        ]

    def test_truncation_at_every_record_boundary_matches_oracle(self, tmp_path):
        """Chop the WAL at arbitrary points; the reopened store must equal a
        fresh build that applied exactly the surviving record prefix."""
        base = RDFStore.build(book_triples(), config=_config())
        base.save(tmp_path / "db")
        log_path = wal_path(tmp_path / "db")
        offsets = [log_path.stat().st_size]  # end offset after k records
        for text in self._updates():
            base.update(text)
            offsets.append(log_path.stat().st_size)
        full = log_path.read_bytes()

        # cut exactly at, just before and just after every record boundary
        cut_points = set()
        for k, offset in enumerate(offsets):
            cut_points.update({offset, offset - 3, offset + 5})
        cut_points = sorted(p for p in cut_points
                            if offsets[0] <= p <= offsets[-1])

        for cut in cut_points:
            log_path.write_bytes(full[:cut])
            survivors = sum(1 for end in offsets[1:] if end <= cut)
            oracle = RDFStore.build(book_triples(), config=_config())
            for text in self._updates()[:survivors]:
                oracle.update(text)
            reopened = RDFStore.open(tmp_path / "db")
            assert_stores_equivalent(oracle, reopened, sql_queries=[]), cut
        log_path.write_bytes(full)

    def test_corrupt_record_ends_replay_at_the_tear(self, tmp_path):
        base = RDFStore.build(book_triples(), config=_config())
        base.save(tmp_path / "db")
        for text in self._updates()[:3]:
            base.update(text)
        log_path = wal_path(tmp_path / "db")
        raw = bytearray(log_path.read_bytes())
        raw[-10] ^= 0xFF  # flip a byte inside the last record's payload
        log_path.write_bytes(bytes(raw))
        assert WriteAheadLog.open(log_path).record_count() == 2
        oracle = RDFStore.build(book_triples(), config=_config())
        for text in self._updates()[:2]:
            oracle.update(text)
        reopened = RDFStore.open(tmp_path / "db")
        assert_stores_equivalent(oracle, reopened, sql_queries=[])

    def test_torn_tail_is_truncated_so_later_appends_survive(self, store, tmp_path):
        """A record appended after crash recovery must never hide behind the
        torn tail: open() truncates the garbage, so the next replay sees it."""
        store.save(tmp_path / "db")
        store.update(insert_book(1))
        store.update(insert_book(2))
        log_path = wal_path(tmp_path / "db")
        full = log_path.read_bytes()
        log_path.write_bytes(full[:-7])  # tear the second record

        recovered = RDFStore.open(tmp_path / "db")  # replays 1, truncates tear
        assert recovered.delta.insert_count() == 4  # one book = 4 triples
        recovered.update(insert_book(3))            # appended post-recovery

        again = RDFStore.open(tmp_path / "db")
        assert again.delta.insert_count() == 8      # books 1 and 3
        assert_stores_equivalent(recovered, again, sql_queries=[])

    def test_wal_append_failure_rolls_the_update_back(self, store, tmp_path, monkeypatch):
        """If the WAL append fails, the request must fail atomically — no
        applied-but-unlogged update a crash would silently lose."""
        store.save(tmp_path / "db")

        def _disk_full(self, text):
            raise PersistenceError("cannot append to WAL: disk full")

        monkeypatch.setattr(WriteAheadLog, "append", _disk_full)
        with pytest.raises(PersistenceError, match="disk full"):
            store.update(insert_book(1))
        assert not store.has_pending_updates()
        assert len(store.journal) == 0  # a later save() must not replay it

    def test_generation_retention_across_checkpoints(self, store, tmp_path):
        """The previous published generation is retained one cycle (open
        handles may still lazily read it); older ones are removed."""
        def generations():
            return {d.name for d in (tmp_path / "db").iterdir()
                    if d.is_dir() and d.name.startswith(GENERATION_PREFIX)}

        info_a = store.save(tmp_path / "db")
        held_open = RDFStore.open(tmp_path / "db")  # lazy loaders into gen A
        answers_at_a = decoded(store, QUERIES[0])
        store.update(insert_book(1))
        info_b = store.checkpoint()
        assert generations() == {info_a.generation, info_b.snapshot.generation}
        # the handle opened against generation A keeps answering (its
        # snapshot view: the state as of generation A)
        assert decoded(held_open, QUERIES[0]) == answers_at_a
        store.update(insert_book(2))
        info_c = store.checkpoint()
        assert generations() == {info_b.snapshot.generation,
                                 info_c.snapshot.generation}
        reopened = RDFStore.open(tmp_path / "db")
        assert_stores_equivalent(store, reopened)

    def test_concurrent_wal_appends_never_destroy_each_other(self, store, tmp_path):
        """Two handles on one database degrade to interleaved appends — an
        acknowledged record is never truncated away by a stale handle."""
        store.save(tmp_path / "db")
        a = RDFStore.open(tmp_path / "db")
        b = RDFStore.open(tmp_path / "db")
        a.update(insert_book(1))
        b.update(insert_book(2))  # b's handle is stale; must adopt a's record
        a.update(insert_book(3))
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.delta.insert_count() == 12  # all three books, 4 triples each

    def test_failed_open_into_leaves_the_target_intact(self, store, tmp_path):
        store.save(tmp_path / "db")
        corrupt_dir = tmp_path / "corrupt"
        store.save(corrupt_dir)
        victim = next(corrupt_dir.glob("gen-*/dictionary.nt"))
        victim.write_bytes(b"\xff not a dictionary \xff")
        served = RDFStore.open(tmp_path / "db")
        before = decoded(served, QUERIES[0])
        with pytest.raises(PersistenceError):
            RDFStore.open(corrupt_dir, into=served)
        # the served store keeps serving, untouched
        assert decoded(served, QUERIES[0]) == before

    def test_append_after_failed_append_is_not_hidden_by_torn_bytes(self, store, tmp_path):
        """A partial record left by a *failed* append must not swallow the
        next acknowledged record: append() truncates to the last intact
        offset before writing."""
        store.save(tmp_path / "db")
        store.update(insert_book(1))
        log_path = wal_path(tmp_path / "db")
        # simulate a torn in-place append: garbage past the last intact record
        with open(log_path, "ab") as sink:
            sink.write(b"WREC\x99\x00\x00\x00partial-garbage")
        store.update(insert_book(2))  # same handle, appends over the garbage
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.delta.insert_count() == 8  # both books replayed
        assert_stores_equivalent(store, reopened, sql_queries=[])

    def test_interrupted_first_save_is_retryable(self, store, tmp_path):
        """Generation debris without a manifest (a failed first save) must
        not wedge the directory; foreign files still must."""
        (tmp_path / "db" / "gen-deadbeef0000" / "columns").mkdir(parents=True)
        (tmp_path / "db" / "gen-deadbeef0000" / "matrix.bin").write_bytes(b"partial")
        store.save(tmp_path / "db")  # reclaims the debris
        reopened = RDFStore.open(tmp_path / "db")
        assert_stores_equivalent(store, reopened)
        assert not (tmp_path / "db" / "gen-deadbeef0000").exists()

    def test_wal_epoch_mismatch_is_refused(self, store, tmp_path):
        store.save(tmp_path / "a")
        store.save(tmp_path / "b")
        wal_path(tmp_path / "a").write_bytes(wal_path(tmp_path / "b").read_bytes())
        with pytest.raises(PersistenceError, match="epoch"):
            RDFStore.open(tmp_path / "a")

    def test_missing_wal_is_refused(self, store, tmp_path):
        store.save(tmp_path / "db")
        wal_path(tmp_path / "db").unlink()
        with pytest.raises(PersistenceError, match="WAL"):
            RDFStore.open(tmp_path / "db")


# -- corruption and format validation ----------------------------------------


class TestFormatValidation:
    def test_corrupt_column_file_detected_on_first_scan(self, store, tmp_path):
        store.save(tmp_path / "db")
        victim = next((tmp_path / "db").glob("gen-*/columns/clustered.cs*.p*.bin"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        reopened = RDFStore.open(tmp_path / "db")  # lazy: open itself succeeds
        with pytest.raises(PersistenceError, match="checksum|corrupt"):
            for text in QUERIES:
                for options in SCHEMES:
                    reopened.sparql(text, options)

    def test_unsupported_format_version(self, store, tmp_path):
        store.save(tmp_path / "db")
        manifest_path = tmp_path / "db" / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="v99"):
            RDFStore.open(tmp_path / "db")

    def test_not_a_database_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="MANIFEST"):
            RDFStore.open(tmp_path)

    def test_save_refuses_foreign_directory(self, store, tmp_path):
        (tmp_path / "precious.txt").write_text("do not clobber")
        with pytest.raises(PersistenceError, match="refusing"):
            store.save(tmp_path)
        assert (tmp_path / "precious.txt").read_text() == "do not clobber"

    def test_manifest_written_last_and_atomically(self, store, tmp_path):
        store.save(tmp_path / "db")
        assert not (tmp_path / "db" / (MANIFEST_FILE + ".tmp")).exists()
        reader = SnapshotReader(tmp_path / "db")
        assert reader.manifest["triples"] == store.triple_count()


# -- typed pending-updates errors ---------------------------------------------


class TestPendingUpdatesErrors:
    def test_load_raises_typed_error(self, store):
        store.update(insert_book(1))
        with pytest.raises(PendingUpdatesError, match="compact"):
            store.load(book_triples())

    def test_cluster_raises_typed_error(self, store):
        store.update(insert_book(1))
        with pytest.raises(PendingUpdatesError, match="compact"):
            store.cluster()

    def test_open_into_reuses_typed_error(self, store, tmp_path):
        store.save(tmp_path / "db")
        dirty = RDFStore.build(book_triples(), config=_config())
        dirty.update(insert_book(1))
        with pytest.raises(PendingUpdatesError, match="pending"):
            RDFStore.open(tmp_path / "db", into=dirty)
        assert dirty.has_pending_updates()  # untouched

    def test_typed_error_is_a_storage_error(self):
        assert issubclass(PendingUpdatesError, StorageError)
        assert issubclass(PersistenceError, StorageError)


# -- checkpoint lifecycle -----------------------------------------------------


class TestCheckpoint:
    def test_checkpoint_compacts_snapshots_and_truncates(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(insert_book(1))
        store.update(insert_book(2))
        report = store.checkpoint()
        assert isinstance(report, CheckpointReport)
        assert report.compaction.merged_inserts > 0
        assert not store.has_pending_updates()
        assert WriteAheadLog.open(wal_path(tmp_path / "db")).record_count() == 0
        reopened = RDFStore.open(tmp_path / "db")
        assert not reopened.has_pending_updates()
        assert_stores_equivalent(store, reopened)

    def test_checkpoint_requires_attachment_or_path(self, store, tmp_path):
        with pytest.raises(PersistenceError, match="not attached"):
            store.checkpoint()
        store.update(insert_book(1))
        report = store.checkpoint(tmp_path / "db")
        assert report.snapshot.pending_updates_logged == 0
        assert store.db_path == tmp_path / "db"

    def test_load_detaches_the_database(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.load(book_triples(books=5))
        assert store.db_path is None
        store.discover_schema()
        store.cluster()
        store.update(insert_book(9))  # must not try to touch the old WAL
        assert WriteAheadLog.open(wal_path(tmp_path / "db")).record_count() == 0

    def test_updates_after_checkpoint_keep_flowing_to_the_new_wal(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(insert_book(1))
        store.checkpoint()
        store.update(insert_book(2))
        reopened = RDFStore.open(tmp_path / "db")
        assert reopened.has_pending_updates()
        assert_stores_equivalent(store, reopened)
