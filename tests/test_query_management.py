"""Live query management: registry, cancellation, progress, event log.

Covered here:

* the structured :class:`EventLog` — ring semantics, type filtering, the
  JSON-lines file sink with bounded rotation;
* :class:`ActiveQueryRegistry` / :class:`ActiveQuery` unit semantics — id
  monotonicity, idempotent finish, cancel of unknown ids, progress
  estimation (clamping, monotonic peak, ``None`` without estimates);
* store integration — queries visible in ``active_queries()`` mid-run,
  cooperative cancellation raising :class:`QueryCancelledError` within one
  batch, lifecycle events for queries/updates/compactions/checkpoints/WAL
  replay, registry and event log surviving ``open(into=)`` swaps;
* cancellation races — cancel under 8 concurrent snapshot readers plus a
  writer, cancel of an already-finished id (no-op), cancel during LIMIT
  early termination — all asserting registry cleanup and no leaked
  snapshot pins;
* the HTTP surface — ``/queries`` listing, ``/queries/cancel`` status
  codes (200/404/400), and the hardened 404-with-JSON-body handler.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    DiscoveryConfig,
    EventLog,
    ExecutionError,
    GeneralizationConfig,
    PlannerOptions,
    QueryCancelledError,
    QueryServer,
    RDFStore,
    StorageError,
    StoreConfig,
)
from repro.engine.operators import ProjectOp
from repro.obs import NULL_ACTIVE_QUERY, ActiveQuery, ActiveQueryRegistry

from _datasets import EX, book_triples

STAR_QUERY = f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}"
CROSS_QUERY = (f"SELECT ?b ?a ?b2 WHERE {{ ?b <{EX}has_author> ?a . "
               f"?b2 <{EX}has_author> ?a . }}")


def _config(**overrides) -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)), **overrides)


@pytest.fixture()
def store() -> RDFStore:
    return RDFStore.build(book_triples(), config=_config())


@pytest.fixture()
def slow_store() -> RDFStore:
    """Row-at-a-time cross-join workload: runs long, cancels within one row."""
    return RDFStore.build(book_triples(books=200, authors=4),
                          config=_config(batch_size=1))


class _Gate:
    """Deterministic mid-query hold: every ProjectOp batch waits for release."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()


@pytest.fixture()
def project_gate(monkeypatch) -> _Gate:
    gate = _Gate()
    original = ProjectOp._next_batch

    def gated(self, context):
        gate.entered.set()
        assert gate.release.wait(timeout=30), "gate never released"
        return original(self, context)

    monkeypatch.setattr(ProjectOp, "_next_batch", gated)
    return gate


# -- event log ----------------------------------------------------------------


class TestEventLog:
    def test_emit_assigns_monotonic_seq_and_ts(self):
        log = EventLog(capacity=8)
        first = log.emit("query_start", id=1)
        second = log.emit("query_finish", id=1, status="finished")
        assert second["seq"] == first["seq"] + 1
        assert second["ts"] >= first["ts"]
        assert first["type"] == "query_start" and first["id"] == 1

    def test_ring_evicts_oldest_and_counts_drops(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("update", n=i)
        events = log.events()
        assert [e["n"] for e in events] == [4, 3, 2]  # newest first
        assert len(log) == 3
        stats = log.stats()
        assert stats == {"emitted": 5, "buffered": 3, "dropped": 2,
                         "rotations": 0}

    def test_type_filter_and_limit(self):
        log = EventLog(capacity=16)
        for i in range(4):
            log.emit("query_start", id=i)
            log.emit("query_finish", id=i)
        starts = log.events(type="query_start", limit=2)
        assert [e["id"] for e in starts] == [3, 2]
        assert all(e["type"] == "query_start" for e in starts)

    def test_file_sink_writes_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, path=path)
        log.emit("checkpoint", path="/db", seconds=0.5)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["type"] == "checkpoint" and record["path"] == "/db"

    def test_rotation_keeps_at_most_two_files(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, path=path, max_bytes=200)
        for i in range(50):
            log.emit("update", n=i, padding="x" * 40)
        log.close()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["events.jsonl", "events.jsonl.1"]
        assert log.stats()["rotations"] >= 1
        for file in tmp_path.iterdir():
            assert file.stat().st_size <= 200 + 120  # bound + one record slack
            for line in file.read_text().splitlines():
                json.loads(line)  # every rotated line is intact JSON

    def test_clear_keeps_file_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, path=path)
        log.emit("update", n=1)
        log.clear()
        assert len(log) == 0
        log.emit("update", n=2)
        log.close()
        assert len(path.read_text().splitlines()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
        with pytest.raises(ValueError):
            EventLog(max_bytes=0)

    def test_store_config_validation(self):
        with pytest.raises(StorageError):
            _config(event_log_size=0)
        with pytest.raises(StorageError):
            _config(event_log_max_bytes=0)


# -- registry unit semantics --------------------------------------------------


class _FakeOp:
    def __init__(self, estimated, children=()):
        self.estimated_rows = estimated
        self._children = tuple(children)

    def children(self):
        return self._children

    def describe(self):
        return f"Fake[est={self.estimated_rows}]"


class TestActiveQueryRegistry:
    def test_ids_are_monotonic_and_finish_is_idempotent(self):
        registry = ActiveQueryRegistry()
        first = registry.begin("SELECT 1", "sparql", "optimized")
        second = registry.begin("SELECT 2", "sparql", "optimized")
        assert second.query_id == first.query_id + 1
        assert registry.active_count() == 2
        registry.finish(first)
        registry.finish(first)  # double-finish is a no-op
        assert registry.active_count() == 1
        registry.finish(second)
        assert registry.active() == []

    def test_cancel_unknown_or_finished_id_is_noop(self):
        events = EventLog(capacity=8)
        registry = ActiveQueryRegistry(events=events)
        assert registry.cancel(42) is False
        query = registry.begin("SELECT 1", "sparql", "optimized")
        registry.finish(query)
        assert registry.cancel(query.query_id) is False
        # a refused cancel leaves no trace in the event log
        assert events.events(type="query_cancel") == []

    def test_cancel_sets_flag_and_emits_event(self):
        events = EventLog(capacity=8)
        registry = ActiveQueryRegistry(events=events)
        query = registry.begin("SELECT 1", "sparql", "optimized")
        assert registry.cancel(query.query_id, reason="too slow") is True
        assert query.cancel_requested is True
        (cancel,) = events.events(type="query_cancel")
        assert cancel["id"] == query.query_id and cancel["reason"] == "too slow"
        with pytest.raises(QueryCancelledError) as excinfo:
            query.raise_cancelled()
        assert excinfo.value.query_id == query.query_id
        assert "too slow" in str(excinfo.value)

    def test_progress_none_without_estimates(self):
        query = ActiveQuery(1, "q", "sparql", "rdfscan")
        query.attach_plan(_FakeOp(None, [_FakeOp(None)]))
        assert query.progress() is None

    def test_progress_clamped_and_monotonic(self):
        child = _FakeOp(100.0)
        root = _FakeOp(100.0, [child])
        query = ActiveQuery(1, "q", "sparql", "optimized")
        query.attach_plan(root)
        query.on_batch(child, 50)
        assert query.progress() == pytest.approx(0.25)
        query.on_batch(root, 50)
        assert query.progress() == pytest.approx(0.5)
        # a wild underestimate cannot push the fraction past 1.0 ...
        query.on_batch(child, 10_000)
        query.on_batch(root, 10_000)
        assert query.progress() == 1.0
        # ... and the reported fraction never goes backwards
        peak = query.progress()
        assert query.progress() >= peak

    def test_describe_lists_everything_top_needs(self):
        query = ActiveQuery(7, "SELECT   ?x\nWHERE { }", "sparql", "optimized",
                            source="snapshot")
        root = _FakeOp(10.0)
        query.attach_plan(root)
        query.on_batch(root, 4)
        entry = query.describe()
        assert entry["id"] == 7
        assert entry["text"] == "SELECT ?x WHERE { }"  # whitespace-normalized
        assert entry["source"] == "snapshot"
        assert entry["rows"] == 4 and entry["batches"] == 1
        assert entry["operator"] == root.describe()
        assert 0 < entry["progress"] <= 1.0
        assert entry["cancel_requested"] is False
        assert entry["elapsed_seconds"] >= 0

    def test_error_type_hierarchy(self):
        assert issubclass(QueryCancelledError, ExecutionError)
        assert QueryCancelledError("x").query_id is None

    def test_null_active_query_is_inert(self):
        assert NULL_ACTIVE_QUERY.enabled is False
        assert NULL_ACTIVE_QUERY.cancel_requested is False
        NULL_ACTIVE_QUERY.raise_cancelled()  # never raises


# -- store integration --------------------------------------------------------


class TestStoreIntegration:
    def test_query_lifecycle_events(self, store):
        result = store.sparql(STAR_QUERY)
        assert store.active_queries() == []
        finish = store.events(type="query_finish", limit=1)[0]
        start = store.events(type="query_start", limit=1)[0]
        assert start["id"] == finish["id"]
        assert start["frontend"] == "sparql"
        assert finish["status"] == "finished"
        assert finish["rows"] == len(result)
        assert finish["seconds"] >= 0

    def test_sql_queries_are_registered_too(self, store):
        store.sql("SELECT isbn_no FROM Book ORDER BY isbn_no")
        start = store.events(type="query_start", limit=1)[0]
        assert start["frontend"] == "sql"
        assert store.active_queries() == []

    def test_failed_query_emits_error_event(self, store):
        with pytest.raises(Exception):
            store.sql("SELECT nope FROM NoSuchTable")
        (error,) = store.events(type="query_error")
        assert "NoSuchTable" in error["error"] or "error" in error["error"].lower()
        assert store.active_queries() == []

    def test_query_visible_and_cancellable_mid_run(self, store, project_gate):
        outcome = []

        def run():
            try:
                store.sparql(STAR_QUERY)
                outcome.append("finished")
            except QueryCancelledError as exc:
                outcome.append(("cancelled", exc.query_id))

        thread = threading.Thread(target=run)
        thread.start()
        assert project_gate.entered.wait(timeout=10)
        (entry,) = store.active_queries()
        assert entry["frontend"] == "sparql"
        assert entry["cancel_requested"] is False
        assert store.cancel(entry["id"], reason="operator request") is True
        (listed,) = store.active_queries()
        assert listed["cancel_requested"] is True
        project_gate.release.set()
        thread.join(timeout=30)
        assert outcome == [("cancelled", entry["id"])]
        assert store.active_queries() == []
        finish = store.events(type="query_finish", limit=1)[0]
        assert finish["status"] == "cancelled" and finish["id"] == entry["id"]
        # a subsequent identical query runs normally on the shared cached plan
        assert len(store.sparql(STAR_QUERY)) > 0

    def test_progress_is_monotonic_under_optimized_scheme(self, slow_store):
        options = PlannerOptions(scheme="optimized")
        done = threading.Event()
        samples = []

        def run():
            try:
                slow_store.sparql(CROSS_QUERY, options)
            except QueryCancelledError:
                pass
            finally:
                done.set()

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.time() + 30
        qid = None
        while not done.is_set() and time.time() < deadline:
            active = slow_store.active_queries()
            if active:
                qid = active[0]["id"]
                if active[0]["progress"] is not None:
                    samples.append(active[0]["progress"])
                if len(samples) >= 5 and samples[-1] > 0:
                    slow_store.cancel(qid)  # seen enough; stop the burn
            time.sleep(0.002)
        thread.join(timeout=30)
        assert qid is not None, "query never became visible"
        assert samples, "no progress samples observed"
        assert samples == sorted(samples), "progress went backwards"
        assert 0 < samples[-1] <= 1.0

    def test_cancel_finished_id_is_noop(self, store):
        store.sparql(STAR_QUERY)
        finished_id = store.events(type="query_finish", limit=1)[0]["id"]
        assert store.cancel(finished_id) is False
        assert store.events(type="query_cancel") == []

    def test_update_compaction_checkpoint_events(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}')
        (update,) = store.events(type="update")
        assert update["inserted"] == 1 and update["deleted"] == 0
        store.checkpoint()
        (compaction,) = store.events(type="compaction")
        assert compaction["merged_inserts"] == 1
        (checkpoint,) = store.events(type="checkpoint")
        assert checkpoint["triples"] == store.triple_count()

    def test_wal_replay_event_on_open(self, store, tmp_path):
        store.save(tmp_path / "db")
        store.update(f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}')
        reopened = RDFStore.open(tmp_path / "db")
        (replay,) = reopened.events(type="wal_replay")
        assert replay["records"] == 1
        # replayed updates do not masquerade as fresh update events
        assert reopened.events(type="update") == []

    def test_registry_and_event_log_survive_open_into_swap(self, store, tmp_path):
        store.sparql(STAR_QUERY)
        registry = store.query_registry
        event_log = store.event_log
        first_id = store.events(type="query_start", limit=1)[0]["id"]
        store.save(tmp_path / "db")
        RDFStore.open(tmp_path / "db", into=store)
        assert store.query_registry is registry
        assert store.event_log is event_log
        store.sparql(STAR_QUERY)
        second_id = store.events(type="query_start", limit=1)[0]["id"]
        assert second_id == first_id + 1  # ids keep counting across the swap
        assert store.cancel(second_id) is False  # already finished: no-op

    def test_event_log_file_sink_through_store(self, tmp_path):
        path = tmp_path / "events.jsonl"
        store = RDFStore.build(book_triples(),
                               config=_config(event_log_path=path))
        store.sparql(STAR_QUERY)
        store.event_log.close()
        types = [json.loads(line)["type"]
                 for line in path.read_text().splitlines()]
        assert types == ["query_start", "query_finish"]

    def test_event_log_entries_metric(self, store):
        store.sparql(STAR_QUERY)
        metrics = store.metrics()
        assert metrics["event_log_entries"] == len(store.event_log) >= 2
        assert metrics["active_queries"] == 0
        assert metrics["queries_cancelled_total"] == 0


# -- cancellation races -------------------------------------------------------


class TestCancellationRaces:
    def test_cancel_under_concurrent_readers_and_writer(self, slow_store):
        """Cancel queries mid-flight under 8 snapshot readers + a writer."""
        with QueryServer(slow_store, workers=8) as server:
            futures = [server.submit_query(CROSS_QUERY) for _ in range(8)]
            stop_writer = threading.Event()

            def write():
                i = 0
                while not stop_writer.is_set():
                    slow_store.update(
                        f'INSERT DATA {{ <{EX}w/{i}> <{EX}p> "v" . }}')
                    i += 1
                    time.sleep(0.002)

            writer = threading.Thread(target=write)
            writer.start()
            try:
                cancelled = set()
                deadline = time.time() + 60
                while time.time() < deadline:
                    for entry in slow_store.active_queries():
                        if entry["id"] not in cancelled:
                            if slow_store.cancel(entry["id"]):
                                cancelled.add(entry["id"])
                    if all(f.done() for f in futures):
                        break
                    time.sleep(0.002)
            finally:
                stop_writer.set()
                writer.join(timeout=30)
            outcomes = []
            for future in futures:
                try:
                    result = future.result(timeout=60)
                    outcomes.append(("finished", len(result)))
                except QueryCancelledError as exc:
                    outcomes.append(("cancelled", exc.query_id))
        # every reader unwound one way or the other; most were cancelled
        assert len(outcomes) == 8
        assert cancelled, "no query was ever visible to cancel"
        assert sum(1 for kind, _ in outcomes if kind == "cancelled") >= 1
        assert slow_store.active_queries() == []
        assert slow_store.open_snapshot_count() == 0, "leaked snapshot pins"
        cancels = slow_store.events(type="query_cancel")
        assert {event["id"] for event in cancels} == cancelled

    def test_cancel_during_limit_early_termination(self, store, project_gate):
        """LIMIT closes its child mid-stream; a racing cancel must unwind
        cleanly through the same cascade without leaking registry entries."""
        query = f"SELECT ?b WHERE {{ ?b <{EX}has_author> ?a . }} LIMIT 3"
        outcome = []

        def run():
            try:
                with store.snapshot() as snapshot:
                    outcome.append(("finished", len(snapshot.sparql(query))))
            except QueryCancelledError as exc:
                outcome.append(("cancelled", exc.query_id))

        thread = threading.Thread(target=run)
        thread.start()
        assert project_gate.entered.wait(timeout=10)
        (entry,) = store.active_queries()
        assert entry["source"] == "snapshot"
        assert store.cancel(entry["id"]) is True
        project_gate.release.set()
        thread.join(timeout=30)
        assert outcome[0][0] in ("cancelled", "finished")
        assert store.active_queries() == []
        assert store.open_snapshot_count() == 0, "leaked snapshot pin"

    def test_uncancelled_limit_still_terminates_early(self, store):
        query = f"SELECT ?b WHERE {{ ?b <{EX}has_author> ?a . }} LIMIT 3"
        with store.snapshot() as snapshot:
            assert len(snapshot.sparql(query)) == 3
        assert store.active_queries() == []
        assert store.open_snapshot_count() == 0


# -- HTTP surface -------------------------------------------------------------


def _http_json(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        body = err.read()
        return err.code, json.loads(body), dict(err.headers)


class TestHttpQueryManagement:
    def test_queries_listing_and_cancel_roundtrip(self, slow_store):
        with QueryServer(slow_store, workers=2) as server:
            port = server.start_metrics_endpoint()
            base = f"http://127.0.0.1:{port}"
            future = server.submit_query(CROSS_QUERY)
            entry = None
            deadline = time.time() + 30
            while time.time() < deadline:
                _status, payload, _headers = _http_json(f"{base}/queries")
                if payload["queries"]:
                    entry = payload["queries"][0]
                    break
                time.sleep(0.005)
            assert entry is not None, "query never appeared in /queries"
            assert entry["source"] == "snapshot"
            status, payload, _headers = _http_json(
                f"{base}/queries/cancel?id={entry['id']}&reason=http")
            assert status == 200 and payload == {"cancelled": True,
                                                 "id": entry["id"]}
            with pytest.raises(QueryCancelledError):
                future.result(timeout=60)
            (cancel,) = slow_store.events(type="query_cancel")
            assert cancel["reason"] == "http"
        assert slow_store.active_queries() == []
        assert slow_store.open_snapshot_count() == 0

    def test_cancel_status_codes(self, store):
        with QueryServer(store, workers=1) as server:
            port = server.start_metrics_endpoint()
            base = f"http://127.0.0.1:{port}"
            status, payload, _ = _http_json(f"{base}/queries/cancel?id=999")
            assert status == 404 and payload["cancelled"] is False
            status, payload, _ = _http_json(f"{base}/queries/cancel?id=abc")
            assert status == 400 and "bad query id" in payload["error"]
            status, payload, _ = _http_json(f"{base}/queries/cancel")
            assert status == 400

    def test_unknown_path_has_json_body_and_content_length(self, store):
        with QueryServer(store, workers=1) as server:
            port = server.start_metrics_endpoint()
            base = f"http://127.0.0.1:{port}"
            status, payload, headers = _http_json(f"{base}/definitely/not")
            assert status == 404
            assert "/queries" in payload["routes"]
            assert int(headers["Content-Length"]) > 0
            assert headers["Content-Type"] == "application/json"

    def test_stats_includes_slow_queries_and_active_count(self, store):
        store.slow_query_log.threshold_seconds = 0.0  # log everything
        with QueryServer(store, workers=1) as server:
            port = server.start_metrics_endpoint()
            server.submit_query(STAR_QUERY).result()
            base = f"http://127.0.0.1:{port}"
            _status, stats, _ = _http_json(f"{base}/stats")
            assert stats["active_queries"] == 0
            assert len(stats["slow_queries"]) >= 1
            entry = stats["slow_queries"][0]
            assert entry["frontend"] == "sparql"
            assert entry["seconds"] >= 0

    def test_service_facade_cancel_and_listing(self, store):
        with QueryServer(store, workers=1) as server:
            assert server.service.active_queries() == []
            assert server.service.cancel(12345) is False
