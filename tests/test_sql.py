"""Tests for the relational catalog and the SQL view engine."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.sql import Catalog, parse_sql
from repro.sql.parser import ColumnRef
from repro.cs.summarize import top_k_summary

EX = "http://example.org/"


class TestSqlParser:
    def test_simple_select(self):
        q = parse_sql("SELECT name, year FROM Book WHERE year >= 1995 ORDER BY year DESC LIMIT 3")
        assert q.base_table == "Book"
        assert [item.column.column for item in q.select_items] == ["name", "year"]
        assert q.predicates[0].op == ">="
        assert q.order_by[0].descending is True
        assert q.limit == 3

    def test_join_and_qualified_columns(self):
        q = parse_sql("SELECT b.isbn, a.name FROM Book b JOIN Person a ON b.author = a.id "
                      "WHERE a.name = 'Alice'")
        assert q.base_alias == "b"
        assert q.joins[0].table == "Person"
        assert q.joins[0].left == ColumnRef("author", "b")
        assert q.predicates[0].constant.value == "Alice"

    def test_aggregate_with_expression(self):
        q = parse_sql("SELECT SUM(price * (1 - discount)) AS revenue FROM Lineitem GROUP BY flag")
        item = q.select_items[0]
        assert item.aggregate == "sum"
        assert item.alias == "revenue"
        assert q.group_by[0].column == "flag"

    def test_date_and_boolean_constants(self):
        q = parse_sql("SELECT * FROM t WHERE d < DATE '1995-03-15' AND f = TRUE")
        assert q.select_star
        assert q.predicates[0].constant.kind == "date"
        assert q.predicates[1].constant.kind == "boolean"

    def test_string_escaping(self):
        q = parse_sql("SELECT * FROM t WHERE name = 'O''Brien'")
        assert q.predicates[0].constant.value == "O'Brien"

    @pytest.mark.parametrize("bad", [
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t JOIN u ON a < b",
        "SELECT a FROM t LIMIT x",
        "UPDATE t SET a = 1",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_sql(bad)


class TestCatalog:
    def test_tables_and_columns(self, book_store):
        catalog = book_store.require_catalog()
        names = catalog.table_names()
        assert "Book" in names and "Person" in names
        book = catalog.table("Book")
        assert book.has_column("id")
        assert book.has_column("isbn_no")
        assert book.row_count == 30

    def test_foreign_key_column_references(self, book_store):
        catalog = book_store.require_catalog()
        book = catalog.table("Book")
        author_col = book.column("has_author")
        assert author_col.references == "Person"

    def test_ddl_script(self, book_store):
        catalog = book_store.require_catalog()
        ddl = catalog.ddl_script()
        assert "CREATE TABLE Book" in ddl
        assert "REFERENCES Person(id)" in ddl

    def test_unknown_table_raises(self, book_store):
        with pytest.raises(SchemaError):
            book_store.require_catalog().table("nope")

    def test_reduced_schema_registration(self, book_store):
        catalog = book_store.require_catalog()
        summary = top_k_summary(book_store.require_schema(), 1)
        names = catalog.register_summary("focus", summary)
        assert catalog.table_names("focus") == names
        assert len(names) == 1
        with pytest.raises(SchemaError):
            catalog.table_names("unknown-schema")

    def test_describe(self, book_store):
        lines = book_store.require_catalog().describe()
        assert any("Book" in line for line in lines)


class TestSqlExecution:
    def test_projection_and_filter(self, book_store):
        result = book_store.sql("SELECT isbn_no FROM Book WHERE in_year >= 2000 ORDER BY isbn_no")
        rows = book_store.decode_rows(result)
        # years 1990..2004 cycle over 30 books; >= 2000 matches 10 books
        assert len(rows) == 10
        assert rows == sorted(rows)

    def test_equality_on_string(self, book_store):
        rows = book_store.decode_rows(
            book_store.sql("SELECT id FROM Book WHERE isbn_no = 'isbn-0007'"))
        assert rows == [(f"{EX}book/7",)]

    def test_join_over_foreign_key(self, book_store):
        result = book_store.sql(
            "SELECT b.isbn_no, a.name FROM Book b JOIN Person a ON b.has_author = a.id "
            "WHERE a.name = 'Author 2' ORDER BY b.isbn_no")
        rows = book_store.decode_rows(result)
        assert len(rows) == 6
        assert all(name == "Author 2" for _isbn, name in rows)

    def test_aggregation_group_by(self, book_store):
        result = book_store.sql(
            "SELECT a.name, COUNT(b.isbn_no) AS books FROM Book b "
            "JOIN Person a ON b.has_author = a.id GROUP BY a.name ORDER BY a.name")
        rows = book_store.decode_rows(result)
        assert len(rows) == 5
        assert all(count == 6.0 for _name, count in rows)

    def test_sum_expression(self, book_store):
        result = book_store.sql("SELECT SUM(in_year) AS total FROM Book WHERE in_year >= 2000")
        [row] = book_store.decode_rows(result)
        # years 2000..2004, twice each
        assert row[0] == pytest.approx(2 * sum(range(2000, 2005)))

    def test_sql_matches_sparql(self, book_store):
        sql_rows = set(book_store.decode_rows(book_store.sql(
            "SELECT isbn_no FROM Book WHERE in_year >= 1995 AND in_year <= 1999")))
        sparql_rows = set(book_store.decode_rows(book_store.sparql(
            f'PREFIX ex: <{EX}> SELECT ?n WHERE {{ ?b ex:isbn_no ?n . ?b ex:in_year ?y . '
            f'FILTER(?y >= "1995"^^<http://www.w3.org/2001/XMLSchema#integer> && '
            f'?y <= "1999"^^<http://www.w3.org/2001/XMLSchema#integer>) }}')))
        assert sql_rows == sparql_rows
        assert sql_rows

    def test_select_star(self, book_store):
        result = book_store.sql("SELECT * FROM Person")
        assert result.bindings.num_rows == 5
        assert len(result.columns) == len(book_store.require_catalog().table("Person").columns)

    def test_unknown_column_raises(self, book_store):
        with pytest.raises(SchemaError):
            book_store.sql("SELECT nope FROM Book")

    def test_ambiguous_column_raises(self, book_store):
        with pytest.raises(SchemaError):
            book_store.sql("SELECT type FROM Book b JOIN Person a ON b.has_author = a.id")

    def test_explain(self, book_store):
        from repro.sql import SqlEngine
        engine = SqlEngine(book_store.context(), book_store.require_catalog())
        text = engine.explain("SELECT isbn_no FROM Book WHERE in_year >= 2000")
        assert "RDFscan" in text

    def test_rdfh_q3_sql_matches_sparql(self, rdfh_store, tpch_tiny):
        from repro.bench import q3_sql, q3_sparql, iter_reference_q3
        sql_rows = rdfh_store.decode_rows(rdfh_store.sql(q3_sql()))
        reference = iter_reference_q3(tpch_tiny)
        assert len(sql_rows) == min(10, len(reference))
        if reference:
            # top revenue value agrees with the row-level reference computation
            assert sql_rows[0][2] == pytest.approx(reference[0][1], rel=1e-9)

    def test_rdfh_q6_sql_matches_reference(self, rdfh_store, tpch_tiny):
        from repro.bench import q6_sql, iter_reference_q6
        [row] = rdfh_store.decode_rows(rdfh_store.sql(q6_sql()))
        assert row[0] == pytest.approx(iter_reference_q6(tpch_tiny), rel=1e-9)
