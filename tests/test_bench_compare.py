"""The benchmark reporter and the regression-compare tool.

``BenchReporter`` writes the schema-versioned ``BENCH_<name>.json`` contract;
``tools/bench_compare.py`` diffs two result sets against it.  The tests pin
the contract down: an injected ≥20% slowdown must be flagged (exit 1),
within-threshold drift must pass (exit 0), and unusable input — wrong schema
version, missing files — must exit 2, never crash or silently pass.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchReporter,
    collect_environment,
    git_revision,
)
from repro.errors import BenchmarkError

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_compare", bench_compare)
_spec.loader.exec_module(bench_compare)


def write_result(out_dir: Path, name: str, measurements: dict) -> Path:
    reporter = BenchReporter(name)
    for measurement_name, spec in measurements.items():
        reporter.record(measurement_name, **spec)
    return reporter.write_json(out_dir)


# -- the reporter's JSON contract ---------------------------------------------


class TestBenchReporter:
    def test_json_document_shape(self, tmp_path):
        reporter = BenchReporter("demo", environment=collect_environment(
            scale_factor=0.002))
        reporter.record("q_seconds", 0.5, runs=3, spread=0.1)
        path = reporter.write_json(tmp_path)
        assert path.name == "BENCH_demo.json"
        document = json.loads(path.read_text())
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert document["name"] == "demo"
        assert document["environment"]["scale_factor"] == 0.002
        for key in ("python", "platform", "git_sha", "numpy"):
            assert key in document["environment"]
        measurement = document["measurements"]["q_seconds"]
        assert measurement["value"] == 0.5
        assert measurement["runs"] == 3
        assert measurement["direction"] == "lower_is_better"

    def test_git_sha_is_stamped(self):
        # this test runs inside the repo's checkout: a real SHA, not the default
        sha = git_revision()
        assert sha != "unknown" and len(sha) == 40

    def test_record_timings_median_and_spread(self):
        reporter = BenchReporter("demo")
        median = reporter.record_timings("q", [0.3, 0.1, 0.2])
        assert median == 0.2
        measurement = reporter.measurements["q"]
        assert measurement["runs"] == 3
        assert measurement["spread"] == pytest.approx(0.2)

    def test_measure_times_the_callable(self):
        reporter = BenchReporter("demo")
        value = reporter.measure("noop_seconds", lambda: None, repeats=3)
        assert value >= 0.0
        assert reporter.measurements["noop_seconds"]["kind"] == "median"

    def test_invalid_names_and_directions_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchReporter("")
        with pytest.raises(BenchmarkError):
            BenchReporter("a/b")
        reporter = BenchReporter("demo")
        with pytest.raises(BenchmarkError):
            reporter.record("x", 1.0, direction="sideways")
        with pytest.raises(BenchmarkError):
            reporter.record_timings("x", [])

    def test_write_text_requires_results_dir(self, tmp_path):
        assert BenchReporter("demo").write_text("r.txt", "hi") is None
        reporter = BenchReporter("demo", results_dir=tmp_path / "results")
        path = reporter.write_text("r.txt", "hi")
        assert path.read_text() == "hi\n"


# -- the compare tool ----------------------------------------------------------


class TestBenchCompare:
    def test_injected_slowdown_is_flagged(self, tmp_path, capsys):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"q_seconds": {"value": 1.0}})
        write_result(cand, "suite", {"q_seconds": {"value": 1.25}})  # +25%
        assert bench_compare.main([str(base), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "q_seconds" in out

    def test_within_threshold_passes(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"q_seconds": {"value": 1.0}})
        write_result(cand, "suite", {"q_seconds": {"value": 1.15}})  # +15%
        assert bench_compare.main([str(base), str(cand)]) == 0

    def test_improvement_passes(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"q_seconds": {"value": 1.0}})
        write_result(cand, "suite", {"q_seconds": {"value": 0.4}})
        assert bench_compare.main([str(base), str(cand)]) == 0

    def test_higher_is_better_direction_respected(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        spec = {"value": 1000.0, "unit": "queries/s",
                "direction": "higher_is_better"}
        write_result(base, "suite", {"throughput": dict(spec)})
        write_result(cand, "suite", {"throughput": dict(spec, value=700.0)})
        assert bench_compare.main([str(base), str(cand)]) == 1
        # and a throughput *gain* is never a regression
        write_result(cand, "suite", {"throughput": dict(spec, value=1500.0)})
        assert bench_compare.main([str(base), str(cand)]) == 0

    def test_custom_threshold(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"q_seconds": {"value": 1.0}})
        write_result(cand, "suite", {"q_seconds": {"value": 1.15}})
        assert bench_compare.main([str(base), str(cand),
                                   "--threshold", "0.1"]) == 1

    def test_noise_floor_mutes_micro_timings(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        # 20µs -> 60µs is 3x, but both are below the 100µs noise floor
        write_result(base, "suite", {"tiny_seconds": {"value": 2e-5}})
        write_result(cand, "suite", {"tiny_seconds": {"value": 6e-5}})
        assert bench_compare.main([str(base), str(cand)]) == 0

    def test_schema_mismatch_exits_two(self, tmp_path, capsys):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"q_seconds": {"value": 1.0}})
        cand.mkdir()
        document = json.loads((base / "BENCH_suite.json").read_text())
        document["schema_version"] = 99
        (cand / "BENCH_suite.json").write_text(json.dumps(document))
        assert bench_compare.main([str(base), str(cand)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_missing_inputs_exit_two(self, tmp_path):
        empty_a = tmp_path / "a"
        empty_b = tmp_path / "b"
        empty_a.mkdir()
        empty_b.mkdir()
        assert bench_compare.main([str(empty_a), str(empty_b)]) == 2
        assert bench_compare.main([str(tmp_path / "nope.json"),
                                   str(tmp_path / "also_nope.json")]) == 2

    def test_no_common_measurements_exit_two(self, tmp_path):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        write_result(base, "suite", {"old_seconds": {"value": 1.0}})
        write_result(cand, "suite", {"new_seconds": {"value": 1.0}})
        assert bench_compare.main([str(base), str(cand)]) == 2

    def test_single_file_comparison(self, tmp_path):
        base = write_result(tmp_path / "base", "suite",
                            {"q_seconds": {"value": 1.0}})
        cand = write_result(tmp_path / "cand", "suite",
                            {"q_seconds": {"value": 2.0}})
        assert bench_compare.main([str(base), str(cand)]) == 1
