"""Tests for the cost-based optimizer: estimator sanity, join-order result
equivalence across plan schemes, plan annotation and the plan cache."""

from __future__ import annotations

import pytest

from repro import (
    DEFAULT_SCHEME,
    IRI,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
    RDFStore,
    StoreConfig,
)
from repro.bench import DirtyConfig, generate_dirty
from repro.columnar import CardinalityEstimator
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.engine import PatternTerm, StarPattern, StarProperty
from repro.errors import PlanError
from repro.sparql import PlanCache, QueryOptimizer

EX = "http://example.org/"
DBLP_VOC = "http://example.org/dblp/schema/"

ALL_SCHEMES = (DEFAULT_SCHEME, RDFSCAN_SCHEME, OPTIMIZED_SCHEME)


def _small_config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


@pytest.fixture(scope="module")
def dirty_store():
    """A clustered store over deliberately messy data (noise + chaos)."""
    dataset = generate_dirty(DirtyConfig(classes=3, subjects_per_class=40,
                                         chaotic_subjects=10))
    return RDFStore.build(dataset.triples, config=_small_config())


def assert_schemes_equivalent(store, query: str, use_zone_maps: bool = False):
    """All plan schemes (and forced optimize on/off) must agree on results."""
    option_sets = [PlannerOptions(scheme=scheme, use_zone_maps=use_zone_maps)
                   for scheme in ALL_SCHEMES]
    option_sets.append(PlannerOptions(scheme=DEFAULT_SCHEME, optimize=True,
                                      use_zone_maps=use_zone_maps))
    option_sets.append(PlannerOptions(scheme=OPTIMIZED_SCHEME, optimize=False,
                                      use_zone_maps=use_zone_maps))
    results = [sorted(store.sparql(query, options).rows()) for options in option_sets]
    reference = results[0]
    assert reference, f"reference scheme returned no rows for {query!r}"
    for options, rows in zip(option_sets[1:], results[1:]):
        assert rows == reference, f"{options.describe()} diverged on {query!r}"


class TestJoinOrderEquivalence:
    def test_book_star_join(self, book_store):
        assert_schemes_equivalent(book_store, f"""
            SELECT ?b ?a ?y WHERE {{
              ?b <{EX}has_author> ?a .
              ?b <{EX}in_year> ?y .
              ?a <{EX}name> ?n .
            }}""")

    def test_book_range_filter(self, book_store):
        assert_schemes_equivalent(book_store, f"""
            SELECT ?b ?y WHERE {{
              ?b <{EX}in_year> ?y .
              ?b <{EX}isbn_no> ?i .
              FILTER (?y >= "1995"^^<http://www.w3.org/2001/XMLSchema#integer>)
            }}""", use_zone_maps=True)

    def test_dblp_star_fk_hop(self, dblp_store):
        assert_schemes_equivalent(dblp_store, f"""
            SELECT ?p ?t ?cn WHERE {{
              ?p <{DBLP_VOC}creator> ?a .
              ?p <{DBLP_VOC}title> ?t .
              ?p <{DBLP_VOC}partOf> ?c .
              ?c <{DBLP_VOC}title> ?cn .
              ?a <{DBLP_VOC}name> ?n .
            }}""")

    def test_dblp_constant_object(self, dblp_store):
        assert_schemes_equivalent(dblp_store, f"""
            SELECT ?p ?t WHERE {{
              ?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{DBLP_VOC}Inproceedings> .
              ?p <{DBLP_VOC}title> ?t .
            }}""")

    def test_dirty_data_equivalence(self, dirty_store):
        voc = "http://example.org/crawl/vocab/"
        assert_schemes_equivalent(dirty_store, f"""
            SELECT ?s ?v WHERE {{
              ?s <{voc}c0_p0> ?v .
              ?s <{voc}c0_p1> ?w .
            }}""")

    def test_unknown_scheme_rejected(self, book_store):
        with pytest.raises(PlanError):
            book_store.sparql("SELECT ?s WHERE { ?s ?p ?o . }",
                              PlannerOptions(scheme="bogus"))


class TestCardinalityEstimator:
    @pytest.fixture()
    def estimator(self, book_store) -> CardinalityEstimator:
        context = book_store.context()
        return CardinalityEstimator(schema=context.schema,
                                    index_store=context.index_store,
                                    clustered_store=context.clustered_store)

    def test_pattern_count_exact_with_index(self, book_store, estimator):
        predicate = book_store.dictionary.lookup_term(IRI(f"{EX}has_author"))
        exact = book_store.index_store.count_pattern(p=predicate)
        assert estimator.pattern_cardinality(p=predicate) == pytest.approx(exact)

    def test_constant_object_pattern_exact(self, book_store, estimator):
        predicate = book_store.dictionary.lookup_term(IRI(f"{EX}has_author"))
        author = book_store.dictionary.lookup_term(IRI(f"{EX}author/0"))
        exact = book_store.index_store.count_pattern(p=predicate, o=author)
        assert estimator.pattern_cardinality(p=predicate, o=author) == pytest.approx(exact)

    def test_star_estimate_within_bounds(self, book_store, estimator):
        d = book_store.dictionary
        star = StarPattern(subject_var="b", properties=[
            StarProperty(predicate_oid=d.lookup_term(IRI(f"{EX}has_author")),
                         object_term=PatternTerm.variable("a")),
            StarProperty(predicate_oid=d.lookup_term(IRI(f"{EX}in_year")),
                         object_term=PatternTerm.variable("y")),
        ])
        subjects = estimator.star_subject_cardinality(star)
        rows = estimator.star_cardinality(star)
        assert 0.0 < subjects <= estimator.total_subjects()
        assert rows >= subjects * 0.99  # fan-out never shrinks the star
        # every book has both properties: the estimate must be close to 30
        assert subjects == pytest.approx(30, rel=0.35)

    def test_distinct_counts_bounded(self, book_store, estimator):
        predicate = book_store.dictionary.lookup_term(IRI(f"{EX}has_author"))
        total = estimator.predicate_count(predicate)
        assert 1.0 <= estimator.distinct_objects(predicate) <= total
        assert 1.0 <= estimator.distinct_subjects(predicate) <= total

    def test_join_cardinality_formula(self):
        assert CardinalityEstimator.join_cardinality(10, 20, 10, 5) == pytest.approx(20.0)
        assert CardinalityEstimator.join_cardinality(0, 20, 1, 1) == 0.0

    def test_degrades_without_any_source(self):
        empty = CardinalityEstimator()
        assert empty.pattern_cardinality(p=42) == 0.0
        assert empty.total_triples() == 0.0


class TestJoinOrdering:
    def test_selective_star_ordered_first(self, book_store):
        d = book_store.dictionary
        books = StarPattern(subject_var="b", properties=[
            StarProperty(predicate_oid=d.lookup_term(IRI(f"{EX}has_author")),
                         object_term=PatternTerm.variable("a")),
            StarProperty(predicate_oid=d.lookup_term(IRI(f"{EX}isbn_no")),
                         object_term=PatternTerm.variable("i")),
        ])
        authors = StarPattern(subject_var="a", properties=[
            StarProperty(predicate_oid=d.lookup_term(IRI(f"{EX}name")),
                         object_term=PatternTerm.variable("n")),
        ])
        optimizer = QueryOptimizer(book_store.context())
        ordered = optimizer.order_stars({"b": books, "a": authors})
        # 5 authors vs 30 books: the author star is the cheaper start
        assert [star.subject_var for star in ordered] == ["a", "b"]

    def test_plans_are_annotated(self, book_store):
        plan = book_store.sparql_plan(
            f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}",
            PlannerOptions(scheme=OPTIMIZED_SCHEME))
        assert plan.estimated_rows is not None

        def all_annotated(op):
            return op.estimated_rows is not None and all(
                all_annotated(child) for child in op.children())
        assert all_annotated(plan)

    def test_actual_rows_recorded_after_execution(self, book_store):
        result = book_store.sparql(f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}")
        assert result.plan.actual_rows == len(result)

    def test_explain_shows_estimates_and_actuals(self, book_store):
        query = f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . }}"
        text = book_store.explain(query, PlannerOptions(scheme=OPTIMIZED_SCHEME))
        assert "est=" in text and "scheme=optimized" in text
        analyzed = book_store.explain(query, PlannerOptions(scheme=OPTIMIZED_SCHEME),
                                      analyze=True)
        assert "actual=" in analyzed


class TestPlanCache:
    def test_lru_mechanics(self):
        cache = PlanCache(capacity=2)
        cache.insert(("a",), 1)
        cache.insert(("b",), 2)
        assert cache.lookup(("a",)) == 1
        cache.insert(("c",), 3)  # evicts ("b",), the least recently used
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 1
        assert cache.stats()["evictions"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.stats()["hits"] == 0

    def test_zero_capacity_disables_caching(self):
        cache = PlanCache(capacity=0)
        cache.insert(("a",), 1)
        assert cache.lookup(("a",)) is None

    def test_key_normalizes_whitespace(self):
        options = PlannerOptions()
        key1 = PlanCache.make_key("SELECT ?s WHERE { ?s ?p ?o . }", options)
        key2 = PlanCache.make_key("SELECT ?s\n  WHERE {\n ?s ?p ?o . }", options)
        assert key1 == key2
        other = PlanCache.make_key("SELECT ?s WHERE { ?s ?p ?o . }",
                                   PlannerOptions(scheme=DEFAULT_SCHEME))
        assert other != key1

    def test_key_preserves_whitespace_inside_literals(self):
        options = PlannerOptions()
        single = PlanCache.make_key('SELECT ?s WHERE { ?s <p> "a b" . }', options)
        double = PlanCache.make_key('SELECT ?s WHERE { ?s <p> "a  b" . }', options)
        assert single != double  # whitespace inside a literal is data

    def test_distinct_literals_not_conflated_by_cache(self):
        from repro import Literal, Triple
        s1, s2 = IRI(f"{EX}s1"), IRI(f"{EX}s2")
        pred = IRI(f"{EX}tag")
        store = RDFStore()
        store.load([Triple(s1, pred, Literal("a b")), Triple(s2, pred, Literal("a  b")),
                    Triple(s1, IRI(f"{EX}x"), Literal("1")), Triple(s2, IRI(f"{EX}x"), Literal("1"))])
        store.discover_schema()
        store.build_indexes()
        r1 = store.decode_rows(store.sparql(f'SELECT ?s WHERE {{ ?s <{EX}tag> "a b" . }}'))
        r2 = store.decode_rows(store.sparql(f'SELECT ?s WHERE {{ ?s <{EX}tag> "a  b" . }}'))
        assert r1 == [(f"{EX}s1",)]
        assert r2 == [(f"{EX}s2",)]

    def test_store_cache_hits_and_plan_identity(self):
        store = RDFStore.build(_book_triples(), config=_small_config())
        query = f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}"
        first = store.sparql(query)
        assert store.plan_cache_stats()["misses"] == 1
        second = store.sparql("  " + query.replace("WHERE", "\nWHERE"))
        assert store.plan_cache_stats()["hits"] == 1
        assert first.plan is second.plan  # parse + plan were skipped entirely
        assert sorted(first.rows()) == sorted(second.rows())

    def test_different_options_planned_separately(self):
        store = RDFStore.build(_book_triples(), config=_small_config())
        query = f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}"
        store.sparql(query, PlannerOptions(scheme=DEFAULT_SCHEME))
        store.sparql(query, PlannerOptions(scheme=OPTIMIZED_SCHEME))
        stats = store.plan_cache_stats()
        assert stats["size"] == 2 and stats["hits"] == 0

    def test_invalidation_on_reload_and_recluster(self):
        store = RDFStore.build(_book_triples(), config=_small_config())
        query = f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}"
        store.sparql(query)
        store.sparql(query)
        assert store.plan_cache_stats()["hits"] == 1
        generation_before = store.plan_cache_stats()["generation"]
        store.cluster()  # physical rebuild drops every cached plan
        stats = store.plan_cache_stats()
        assert stats["generation"] > generation_before  # clear() bumped it
        assert stats == {"size": 0, "capacity": 128, "hits": 0,
                         "misses": 0, "evictions": 0,
                         "lifetime_hits": 1, "lifetime_misses": 1,
                         "lifetime_evictions": 0,
                         "generation": stats["generation"]}
        result = store.sparql(query)  # replans against the new context
        assert store.plan_cache_stats()["misses"] == 1
        assert len(result) == 30

    def test_cache_disabled_by_config(self):
        config = _small_config()
        config.plan_cache_size = 0
        store = RDFStore.build(_book_triples(), config=config)
        query = f"SELECT ?b WHERE {{ ?b <{EX}isbn_no> ?i . }}"
        first = store.sparql(query)
        second = store.sparql(query)
        assert first.plan is not second.plan


def _book_triples():
    """The shared book graph, without the irregular web-page subjects."""
    from _datasets import book_triples

    return book_triples(with_irregular=False)
