"""Round-trip and edge-case tests for the RDF I/O layer.

The write path makes parser correctness load-bearing: every ``INSERT DATA``
travels through literal escaping rules, and stores are re-serialized for
oracle rebuilds.  These tests pin down N-Triples escape handling, unicode
literals and Turtle prefixed-name corner cases beyond the basic suite in
``test_rio.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.model import BNode, IRI, Literal, Triple
from repro.model.terms import (
    XSD_DATE,
    XSD_INTEGER,
    escape_literal,
    unescape_literal,
)
from repro.rio import parse_ntriples, parse_turtle, serialize_ntriples

S = IRI("http://example.org/s")
P = IRI("http://example.org/p")


def roundtrip(triples):
    return list(parse_ntriples(serialize_ntriples(triples)))


class TestNTriplesEscapes:
    @pytest.mark.parametrize("lexical", [
        'line1\nline2',
        'tab\there',
        'quote "inside" quote',
        'back\\slash',
        'carriage\rreturn',
        'mixed \\n literal backslash-n',
        'trailing backslash \\',
        '\x01control\x1f',
        'del\x7fchar',
    ])
    def test_escape_roundtrip(self, lexical):
        triple = Triple(S, P, Literal(lexical))
        (parsed,) = roundtrip([triple])
        assert parsed.object.lexical == lexical

    def test_escaped_form_is_single_line(self):
        # NEL and the unicode line/paragraph separators must not break lines
        tricky = "ab c d"
        line = Triple(S, P, Literal(tricky)).n3()
        assert "\n" not in line and "\r" not in line
        (parsed,) = parse_ntriples(line)
        assert parsed.object.lexical == tricky

    def test_unescape_u_and_U_forms(self):
        assert unescape_literal("snow\\u2603man") == "snow☃man"
        assert unescape_literal("clef\\U0001D11Eclef") == "clef\U0001D11Eclef"

    def test_escape_unescape_inverse(self):
        text = 'all of it: "quotes", \\, \n, \t, ☃, \U0001F600'
        assert unescape_literal(escape_literal(text)) == text


class TestNTriplesUnicode:
    @pytest.mark.parametrize("lexical", [
        "déjà vu",
        "日本語のテキスト",
        "emoji \U0001F600 and astral \U0001D11E",
        "combining é accent",
        "rtl שלום",
    ])
    def test_unicode_literal_roundtrip(self, lexical):
        for annotated in (Literal(lexical), Literal(lexical, language="und"),
                          Literal(lexical, datatype="http://example.org/dt")):
            (parsed,) = roundtrip([Triple(S, P, annotated)])
            assert parsed.object == annotated

    def test_unicode_iri_roundtrip(self):
        subject = IRI("http://example.org/café/ünïcode")
        (parsed,) = roundtrip([Triple(subject, P, Literal("x"))])
        assert parsed.subject == subject

    def test_typed_and_tagged_roundtrip(self):
        triples = [
            Triple(S, P, Literal("42", datatype=XSD_INTEGER)),
            Triple(S, P, Literal("1994-01-31", datatype=XSD_DATE)),
            Triple(S, P, Literal("hello", language="en-GB")),
            Triple(BNode("b1"), P, BNode("b2")),
        ]
        assert roundtrip(triples) == triples


class TestTurtlePrefixedNames:
    def test_local_name_with_dots_and_dashes(self):
        doc = """
        @prefix ex: <http://example.org/> .
        ex:a-b.c ex:p-q ex:v1.2 .
        """
        (triple,) = parse_turtle(doc)
        assert triple.subject == IRI("http://example.org/a-b.c")
        assert triple.predicate == IRI("http://example.org/p-q")
        assert triple.object == IRI("http://example.org/v1.2")

    def test_trailing_dot_terminates_statement_not_name(self):
        doc = "@prefix ex: <http://example.org/> .\nex:s ex:p ex:o.\n"
        (triple,) = parse_turtle(doc)
        assert triple.object == IRI("http://example.org/o")

    def test_empty_prefix(self):
        doc = "@prefix : <http://example.org/> .\n:s :p :o .\n"
        (triple,) = parse_turtle(doc)
        assert triple.subject == IRI("http://example.org/s")

    def test_colon_in_local_part_is_preserved(self):
        # the first ':' splits prefix from local name; later ones belong to it
        doc = "@prefix ex: <http://example.org/> .\nex:a:b ex:p ex:o .\n"
        (triple,) = parse_turtle(doc)
        assert triple.subject == IRI("http://example.org/a:b")

    def test_prefixed_datatype(self):
        doc = """
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        @prefix ex: <http://example.org/> .
        ex:s ex:p "7"^^xsd:integer .
        """
        (triple,) = parse_turtle(doc)
        assert triple.object == Literal("7", datatype=XSD_INTEGER)

    def test_a_keyword_only_as_predicate(self):
        doc = """
        @prefix ex: <http://example.org/> .
        ex:a a ex:Letter .
        """
        (triple,) = parse_turtle(doc)
        assert triple.subject == IRI("http://example.org/a")
        assert triple.predicate.value.endswith("#type")

    def test_undefined_prefix_raises(self):
        with pytest.raises(ParseError):
            list(parse_turtle("nope:s nope:p nope:o ."))

    def test_predicate_object_lists_roundtrip_through_ntriples(self):
        doc = """
        @prefix ex: <http://example.org/> .
        ex:s ex:p ex:o1 , ex:o2 ;
             ex:q "v\\"w" , "x" .
        """
        turtle_triples = list(parse_turtle(doc))
        assert len(turtle_triples) == 4
        assert roundtrip(turtle_triples) == turtle_triples
