"""Shared fixtures: small deterministic datasets and pre-built stores."""

from __future__ import annotations

import pytest

from repro import RDFStore, StoreConfig
from repro.bench import (
    DblpConfig,
    TpchConfig,
    generate_dblp,
    generate_tpch,
    sub_order_keys,
    tpch_to_triples,
)
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.model import Graph

from _datasets import EX, book_triples  # noqa: F401 - re-exported for tests


@pytest.fixture(scope="session")
def book_graph():
    return Graph(book_triples())


@pytest.fixture(scope="session")
def book_store():
    """A clustered store over the bibliographic graph."""
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    return RDFStore.build(book_triples(), config=config)


@pytest.fixture(scope="session")
def dblp_store():
    """A clustered store over the DBLP-like generator output."""
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    return RDFStore.build(generate_dblp(DblpConfig(papers=120, conferences=8, authors=40)),
                          config=config)


@pytest.fixture(scope="session")
def tpch_tiny():
    """A tiny deterministic TPC-H data set (same rows for every test)."""
    return generate_tpch(TpchConfig(scale_factor=0.0004))


@pytest.fixture(scope="session")
def rdfh_store(tpch_tiny):
    """A clustered RDF-H store at tiny scale, sub-ordered like the paper."""
    triples = list(tpch_to_triples(tpch_tiny))
    return RDFStore.build(triples, sort_key_names=sub_order_keys(), cluster=True)


@pytest.fixture(scope="session")
def rdfh_parseorder_store(tpch_tiny):
    """The same RDF-H data without subject clustering (ParseOrder baseline)."""
    triples = list(tpch_to_triples(tpch_tiny))
    return RDFStore.build(triples, cluster=False)
