"""Tests for triple tables, the exhaustive index store, clustering and the
clustered store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import BufferPool, NULL_OID
from repro.cs import DiscoveryConfig, GeneralizationConfig, discover_schema
from repro.errors import StorageError
from repro.model import EncodedTriple, Graph, IRI, Literal, TermDictionary, Triple
from repro.model.terms import XSD_INTEGER
from repro.storage import (
    ClusteredStore,
    ExhaustiveIndexStore,
    ORDERS,
    TripleTable,
    cluster_subjects,
    deduplicate_triples,
    encode_graph,
    plan_subject_clustering,
    value_order_literals,
)

EX = "http://example.org/"


def _encoded(rows):
    return [EncodedTriple(*row) for row in rows]


SAMPLE = _encoded([
    (0, 10, 20), (0, 11, 21), (1, 10, 22), (1, 11, 21), (2, 10, 20), (2, 12, 23),
])


class TestTripleTable:
    def test_sorted_by_order(self):
        table = TripleTable(SAMPLE, order="pso")
        raw = table.raw()
        keys = list(zip(raw[:, 1], raw[:, 0], raw[:, 2]))
        assert keys == sorted(keys)

    def test_invalid_order_rejected(self):
        with pytest.raises(StorageError):
            TripleTable(SAMPLE, order="xyz")

    def test_scan_prefix_by_predicate(self):
        table = TripleTable(SAMPLE, order="pso")
        rows = table.scan_prefix(10, fetch="so")
        assert rows.shape == (3, 2)
        assert set(rows[:, 0].tolist()) == {0, 1, 2}

    def test_scan_prefix_two_levels(self):
        table = TripleTable(SAMPLE, order="pso")
        rows = table.scan_prefix(11, 1, fetch="o")
        assert rows[:, 0].tolist() == [21]

    def test_lookup_and_contains(self):
        table = TripleTable(SAMPLE, order="spo")
        assert table.lookup(0) == 2
        assert table.contains(EncodedTriple(0, 10, 20))
        assert not table.contains(EncodedTriple(0, 10, 999))

    def test_predicate_counts(self):
        table = TripleTable(SAMPLE)
        assert table.predicate_counts() == {10: 3, 11: 2, 12: 1}

    def test_subject_property_sets(self):
        table = TripleTable(SAMPLE)
        sets = table.subject_property_sets()
        assert sets[0] == frozenset({10, 11})
        assert sets[2] == frozenset({10, 12})

    def test_subject_property_multiplicities(self):
        rows = _encoded([(0, 10, 1), (0, 10, 2), (0, 11, 3)])
        table = TripleTable(rows)
        mults = table.subject_property_multiplicities()
        assert mults[0] == {10: 2, 11: 1}

    def test_empty_table(self):
        table = TripleTable([])
        assert len(table) == 0
        assert table.scan_prefix(5).shape == (0, 3)

    def test_page_accounting_on_scan(self):
        pool = BufferPool(page_size=2)
        table = TripleTable(SAMPLE, order="pso", pool=pool)
        table.scan_prefix(10, fetch="so")
        assert pool.tracker.page_reads > 0

    def test_deduplicate(self):
        rows = _encoded([(0, 1, 2), (0, 1, 2), (3, 4, 5)])
        assert len(deduplicate_triples(rows)) == 2


class TestExhaustiveIndexStore:
    @pytest.fixture()
    def store(self):
        return ExhaustiveIndexStore(np.asarray([[t.s, t.p, t.o] for t in SAMPLE]))

    def test_maintains_all_orders(self, store):
        assert set(store.tables) == set(ORDERS)
        assert len(store) == len(SAMPLE)

    def test_best_order_selection(self, store):
        assert store.best_order("p") in ("pso", "pos")
        assert store.best_order("sp") in ("spo", "sop")
        assert store.best_order("spo") in ORDERS

    def test_scan_pattern_matches_naive(self, store):
        expected = {(t.s, t.o) for t in SAMPLE if t.p == 10}
        rows = store.scan_pattern(p=10, fetch="so")
        assert {tuple(r) for r in rows.tolist()} == expected

    def test_scan_pattern_subject_and_predicate(self, store):
        rows = store.scan_pattern(s=1, p=11, fetch="o")
        assert rows[:, 0].tolist() == [21]

    def test_scan_pattern_object_only(self, store):
        rows = store.scan_pattern(o=21, fetch="s")
        assert sorted(rows[:, 0].tolist()) == [0, 1]

    def test_count_pattern(self, store):
        assert store.count_pattern(p=10) == 3
        assert store.count_pattern(p=10, o=20) == 2
        assert store.count_pattern() == len(SAMPLE)

    def test_contains_and_object_lookup(self, store):
        assert store.contains(EncodedTriple(2, 12, 23))
        assert store.object_lookup(2, 12).tolist() == [23]

    def test_unknown_order_rejected(self, store):
        with pytest.raises(StorageError):
            store.table("abc")


def _book_like_store(dirty: bool = True):
    triples = []
    for i in range(12):
        s = IRI(f"{EX}b{i}")
        triples.append(Triple(s, IRI(EX + "type"), IRI(EX + "Book")))
        triples.append(Triple(s, IRI(EX + "author"), IRI(f"{EX}a{i % 3}")))
        triples.append(Triple(s, IRI(EX + "year"), Literal(str(1990 + i), datatype=XSD_INTEGER)))
    for i in range(3):
        s = IRI(f"{EX}a{i}")
        triples.append(Triple(s, IRI(EX + "type"), IRI(EX + "Person")))
        triples.append(Triple(s, IRI(EX + "name"), Literal(f"Author {i}")))
    if dirty:
        triples.append(Triple(IRI(f"{EX}b0"), IRI(EX + "author"), IRI(f"{EX}a2")))  # second author
        triples.append(Triple(IRI(f"{EX}weird"), IRI(EX + "foo"), Literal("bar")))
    dictionary, matrix = encode_graph(triples)
    matrix = value_order_literals(matrix, dictionary)
    config = DiscoveryConfig(generalization=GeneralizationConfig(min_support=3))
    schema = discover_schema(matrix, dictionary, config)
    return dictionary, matrix, schema


class TestSubjectClustering:
    def test_plan_is_bijection_over_member_subjects(self):
        dictionary, matrix, schema = _book_like_store()
        plan = plan_subject_clustering(matrix, dictionary, schema)
        assert sorted(plan.mapping.keys()) == sorted(plan.mapping.values())

    def test_cluster_groups_subjects_contiguously(self):
        dictionary, matrix, schema = _book_like_store()
        new_matrix, plan = cluster_subjects(matrix, dictionary, schema)
        # after clustering, each CS's subject OIDs form a contiguous run within
        # the sorted list of all member subject OIDs
        all_members = sorted(s for t in schema.tables.values() for s in t.subjects)
        position = {s: i for i, s in enumerate(all_members)}
        for table in schema.tables.values():
            positions = sorted(position[s] for s in table.subjects)
            assert positions == list(range(positions[0], positions[0] + len(positions)))

    def test_cluster_preserves_triples(self):
        dictionary, matrix, schema = _book_like_store()
        before = {tuple(dictionary.decode_triple(EncodedTriple(*row)).n3() for _ in [0])[0]
                  for row in matrix.tolist()}
        new_matrix, _plan = cluster_subjects(matrix, dictionary, schema)
        after = {dictionary.decode_triple(EncodedTriple(*row)).n3() for row in new_matrix.tolist()}
        assert before == after

    def test_sort_key_orders_subjects_by_value(self):
        dictionary, matrix, schema = _book_like_store(dirty=False)
        year_oid = dictionary.lookup_term(IRI(EX + "year"))
        book_cs = next(cs_id for cs_id, t in schema.tables.items()
                       if any(p == year_oid for p in t.properties))
        new_matrix, _plan = cluster_subjects(matrix, dictionary, schema, {book_cs: year_oid})
        store = ClusteredStore.build(new_matrix, schema)
        block = store.block(book_cs)
        years = block.column(year_oid).data
        valid = years[years != NULL_OID]
        assert list(valid) == sorted(valid)
        assert year_oid in block.sorted_properties


class TestClusteredStore:
    def test_reconstruction_equals_input(self):
        dictionary, matrix, schema = _book_like_store()
        new_matrix, _ = cluster_subjects(matrix, dictionary, schema)
        store = ClusteredStore.build(new_matrix, schema)
        original = sorted(map(tuple, new_matrix.tolist()))
        rebuilt = sorted(map(tuple, store.reconstruct_triples().tolist()))
        assert original == rebuilt
        assert store.triple_count() == new_matrix.shape[0]

    def test_irregular_subjects_stay_in_triple_store(self):
        dictionary, matrix, schema = _book_like_store()
        new_matrix, _ = cluster_subjects(matrix, dictionary, schema)
        store = ClusteredStore.build(new_matrix, schema)
        weird = dictionary.lookup_term(IRI(f"{EX}weird"))
        assert store.block_of_subject(weird) is None
        assert len(store.irregular) >= 1
        assert 0 < store.regular_fraction() < 1

    def test_blocks_with_properties(self):
        dictionary, matrix, schema = _book_like_store()
        new_matrix, _ = cluster_subjects(matrix, dictionary, schema)
        store = ClusteredStore.build(new_matrix, schema)
        author = dictionary.lookup_term(IRI(EX + "author"))
        year = dictionary.lookup_term(IRI(EX + "year"))
        name = dictionary.lookup_term(IRI(EX + "name"))
        assert len(store.blocks_with_properties([author, year])) == 1
        assert len(store.blocks_with_properties([author, name])) == 0

    def test_zone_maps_built_on_request(self):
        dictionary, matrix, schema = _book_like_store(dirty=False)
        new_matrix, _ = cluster_subjects(matrix, dictionary, schema)
        zone_props = {cs_id: list(t.properties) for cs_id, t in schema.tables.items()}
        store = ClusteredStore.build(new_matrix, schema, zone_map_properties=zone_props, zone_size=4)
        block = store.blocks[0]
        assert block.zone_maps
        for zone_map in block.zone_maps.values():
            assert len(zone_map) >= 1

    def test_unknown_block_raises(self):
        dictionary, matrix, schema = _book_like_store()
        store = ClusteredStore.build(matrix, schema)
        with pytest.raises(StorageError):
            store.block(999)

    def test_positions_of_subjects(self):
        dictionary, matrix, schema = _book_like_store(dirty=False)
        new_matrix, _ = cluster_subjects(matrix, dictionary, schema)
        store = ClusteredStore.build(new_matrix, schema)
        block = store.blocks[0]
        subjects = block.subject_column.data
        positions = block.positions_of_subjects(np.asarray([subjects[0], subjects[-1], 10**9]))
        assert list(positions) == [0, len(block) - 1]


# -- property-based equivalence --------------------------------------------------------


@st.composite
def random_encoded_dataset(draw):
    """Random small (s, p, o) datasets with a handful of predicates."""
    n = draw(st.integers(5, 60))
    rows = set()
    for _ in range(n):
        s = draw(st.integers(0, 15))
        p = draw(st.integers(0, 4))
        o = draw(st.integers(100, 130))
        rows.add((s, p, o))
    return sorted(rows)


@settings(max_examples=40, deadline=None)
@given(random_encoded_dataset())
def test_exhaustive_store_pattern_scans_match_naive(rows):
    matrix = np.asarray(rows, dtype=np.int64)
    store = ExhaustiveIndexStore(matrix)
    for s, p, o in [(None, 2, None), (3, None, None), (None, None, 105), (3, 2, None)]:
        expected = {tuple(r) for r in rows
                    if (s is None or r[0] == s) and (p is None or r[1] == p) and (o is None or r[2] == o)}
        got = {tuple(r) for r in store.scan_pattern(s=s, p=p, o=o).tolist()}
        assert got == expected


@settings(max_examples=30, deadline=None)
@given(random_encoded_dataset())
def test_clustered_store_never_loses_triples(rows):
    """Building the clustered store over any discovered schema preserves the
    exact triple set (blocks + irregular spill)."""
    matrix = np.asarray(rows, dtype=np.int64)
    schema = discover_schema(matrix, dictionary=None,
                             config=DiscoveryConfig(generalization=GeneralizationConfig(min_support=2)))
    store = ClusteredStore.build(matrix, schema)
    assert sorted(map(tuple, store.reconstruct_triples().tolist())) == sorted(map(tuple, matrix.tolist()))
