"""Property-based differential tests (hypothesis).

Random interleavings of ``INSERT DATA`` / ``DELETE DATA`` / ``DELETE WHERE``
(plus mid-sequence compactions) run against a store, while a plain Python
set-of-triples model tracks the expected visible graph.  After the sequence:

* the store's reconstructed visible triple set equals the model exactly;
* every query, under **every plan scheme**, returns what a store freshly
  rebuilt from the model returns (the rebuild oracle) — both *pre*- and
  *post*-compaction;
* a per-request undo log abort restores the delta store bit-identically;
* when ``rdflib`` is installed, pattern-query results also match rdflib's
  answers over the same graph (cross-implementation differential check).

Examples are derandomized: hypothesis explores the space deterministically,
and the CI seeded-shuffle job covers order dependence separately.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")  # optional test dep: skip cleanly, like rdflib
from hypothesis import given, settings, strategies as st

from _datasets import EX, book_triples
from repro import RDFStore, StoreConfig
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.model import EncodedTriple, IRI, Literal, Triple
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
)
from repro.updates import DeltaStore

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

SCHEMES = [
    PlannerOptions(scheme=DEFAULT_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME),
    PlannerOptions(scheme=OPTIMIZED_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True),
]

QUERIES = [
    f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}",
    f"SELECT ?b WHERE {{ ?b <{EX}has_author> <{EX}author/1> . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 1998) }}",
    f"SELECT (COUNT(?b) AS ?c) WHERE {{ ?b <{EX}isbn_no> ?i . }}",
]

# -- the operation universe (small on purpose: collisions are the point) -------------

SUBJECTS = [f"{EX}book/{i}" for i in range(8)] + [f"{EX}book/new{i}" for i in range(4)]
AUTHORS = [f"{EX}author/{i}" for i in range(5)]
YEARS = list(range(1995, 2005))
ISBNS = [f"isbn-p{i:02d}" for i in range(6)]


BATCH_SIZES = [1, 1024]
"""Row-at-a-time oracle vs. the production default: the random
insert/delete/compact interleavings sweep the batched executor too."""


def _config(batch_size: int | None = None) -> StoreConfig:
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    if batch_size is not None:
        config.batch_size = batch_size
    return config


def _triple(kind: str, subject: str, value) -> Triple:
    if kind == "author":
        return Triple(IRI(subject), IRI(f"{EX}has_author"), IRI(value))
    if kind == "year":
        return Triple(IRI(subject), IRI(f"{EX}in_year"),
                      Literal(str(value), datatype=XSD_INT))
    return Triple(IRI(subject), IRI(f"{EX}isbn_no"), Literal(value))


def _data_block(triple: Triple) -> str:
    return f"{triple.subject.n3()} {triple.predicate.n3()} {triple.object.n3()} ."


triple_st = st.one_of(
    st.tuples(st.just("author"), st.sampled_from(SUBJECTS), st.sampled_from(AUTHORS)),
    st.tuples(st.just("year"), st.sampled_from(SUBJECTS), st.sampled_from(YEARS)),
    st.tuples(st.just("isbn"), st.sampled_from(SUBJECTS), st.sampled_from(ISBNS)),
).map(lambda spec: _triple(*spec))

op_st = st.one_of(
    st.tuples(st.just("insert"), triple_st),
    st.tuples(st.just("delete"), triple_st),
    st.tuples(st.just("delete_where"), st.sampled_from(SUBJECTS)),
    st.tuples(st.just("compact"), st.none()),
)


def live_triples(store: RDFStore) -> set:
    """The visible triple set, from delta bookkeeping (not the engine)."""
    base = {tuple(int(v) for v in row) for row in store.matrix}
    base -= {tuple(int(v) for v in row) for row in store.delta.tombstone_matrix()}
    base |= {tuple(int(v) for v in row) for row in store.delta.matrix()}
    return {store.dictionary.decode_triple(EncodedTriple(*key)) for key in base}


def _sorted_decoded(store: RDFStore, text: str, options=None) -> list:
    rows = store.decode_rows(store.sparql(text, options))
    return sorted(tuple(str(v) for v in row) for row in rows)


def apply_ops(store: RDFStore, model: set, ops) -> None:
    """Apply one generated op sequence to the store and the set model."""
    for op, payload in ops:
        if op == "insert":
            store.update(f"INSERT DATA {{ {_data_block(payload)} }}")
            model.add(payload)
        elif op == "delete":
            store.update(f"DELETE DATA {{ {_data_block(payload)} }}")
            model.discard(payload)
        elif op == "delete_where":
            store.update(f"DELETE WHERE {{ <{payload}> ?p ?o . }}")
            for triple in [t for t in model if t.subject == IRI(payload)]:
                model.discard(triple)
        else:  # compact mid-sequence: visible state must not change
            store.compact()


def assert_matches_oracle(store: RDFStore, model: set) -> None:
    assert live_triples(store) == model
    oracle = RDFStore.build(sorted(model, key=str), config=_config())
    for text in QUERIES:
        expected = _sorted_decoded(oracle, text)
        for options in SCHEMES:
            assert _sorted_decoded(store, text, options) == expected, \
                (text, options.describe())


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@settings(max_examples=25, deadline=None, derandomize=True)
@given(ops=st.lists(op_st, max_size=14))
def test_interleavings_match_rebuild_oracle(batch_size, ops):
    store = RDFStore.build(book_triples(), config=_config(batch_size))
    model = set(book_triples())
    apply_ops(store, model, ops)
    assert_matches_oracle(store, model)          # pre-compaction
    store.compact()
    assert_matches_oracle(store, model)          # post-compaction


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@settings(max_examples=25, deadline=None, derandomize=True)
@given(ops=st.lists(op_st, max_size=10))
def test_snapshot_pinned_mid_sequence_stays_stable(batch_size, ops):
    """A snapshot pinned at a random point keeps answering identically while
    the rest of the sequence (including compactions) applies."""
    store = RDFStore.build(book_triples(), config=_config(batch_size))
    model = set(book_triples())
    half = len(ops) // 2
    apply_ops(store, model, ops[:half])
    with store.snapshot() as snap:
        pinned = [sorted(tuple(str(v) for v in row)
                         for row in snap.decode_rows(snap.sparql(text)))
                  for text in QUERIES]
        apply_ops(store, model, ops[half:])
        store.compact()
        for text, expected in zip(QUERIES, pinned):
            got = [sorted(tuple(str(v) for v in row)
                          for row in snap.decode_rows(snap.sparql(text)))]
            assert got == [expected], text
    assert_matches_oracle(store, model)


@settings(max_examples=50, deadline=None, derandomize=True)
@given(
    pending=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5),
                               st.integers(0, 30)), max_size=20),
    request_ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]),
                  st.integers(0, 30), st.integers(0, 5), st.integers(0, 30),
                  st.booleans()),
        max_size=15),
)
def test_undo_log_abort_is_exact_inverse(pending, request_ops):
    """Abort after an arbitrary mutation mix restores the delta exactly."""
    delta = DeltaStore()
    for s, p, o in pending:
        delta.insert(s, p, o, in_base=False)
    before = (dict(delta._inserts), set(delta._tombstones),
              {s: set(v) for s, v in delta._subject_props.items()})
    undo = delta.begin_request()
    for op, s, p, o, in_base in request_ops:
        if op == "insert":
            delta.insert(s, p, o, in_base=in_base)
        else:
            delta.delete(s, p, o, in_base=in_base)
    delta.abort_request(undo)
    after = (dict(delta._inserts), set(delta._tombstones),
             {s: set(v) for s, v in delta._subject_props.items()})
    assert after == before


def test_interleavings_match_rdflib():
    """Cross-implementation differential check (skipped without rdflib)."""
    rdflib = pytest.importorskip("rdflib")
    store = RDFStore.build(book_triples(), config=_config())
    model = set(book_triples())
    ops = [
        ("insert", _triple("author", SUBJECTS[9], AUTHORS[2])),
        ("insert", _triple("year", SUBJECTS[9], 2003)),
        ("delete_where", SUBJECTS[1]),
        ("insert", _triple("isbn", SUBJECTS[9], ISBNS[0])),
        ("delete", _triple("author", SUBJECTS[2], AUTHORS[2 % 5])),
    ]
    apply_ops(store, model, ops)

    graph = rdflib.Graph()
    for triple in model:
        graph.add((
            rdflib.URIRef(triple.subject.value),
            rdflib.URIRef(triple.predicate.value),
            rdflib.URIRef(triple.object.value) if isinstance(triple.object, IRI)
            else rdflib.Literal(
                triple.object.lexical,
                datatype=rdflib.URIRef(triple.object.datatype)
                if triple.object.datatype else None),
        ))
    patterns = [
        f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . }}",
        f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . ?b <{EX}isbn_no> ?i . }}",
    ]
    for text in patterns:
        expected = sorted(tuple(str(value) for value in row) for row in graph.query(text))
        for options in SCHEMES:
            assert _sorted_decoded(store, text, options) == expected, text
    store.compact()
    for text in patterns:
        expected = sorted(tuple(str(value) for value in row) for row in graph.query(text))
        for options in SCHEMES:
            assert _sorted_decoded(store, text, options) == expected, text
