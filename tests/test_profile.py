"""The per-query resource profiler.

Profiling must be a pure observer: identical results whether a query runs
bare, traced or profiled, over every corpus and plan scheme.  Its numbers
must *reconcile* — per-operator self page reads sum to the root's cumulative
count, which equals the buffer pool's own delta over the run — and its cost
when disabled must stay within the repo's 5% observability budget.
"""

from __future__ import annotations

import time

import pytest

from _datasets import EX, book_triples
from repro import RDFStore, StoreConfig
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.errors import StorageError
from repro.obs import ProfileSpan, QueryProfile, QueryTrace, format_bytes
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
)

SCHEMES = [
    PlannerOptions(scheme=DEFAULT_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME),
    PlannerOptions(scheme=OPTIMIZED_SCHEME),
]

BOOK_QUERIES = [
    f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 1998) }}",
    f"SELECT DISTINCT ?a WHERE {{ ?b <{EX}has_author> ?a . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . }} ORDER BY ?y ?b LIMIT 7",
]

DBLP_VOC = "http://example.org/dblp/schema/"

DBLP_QUERIES = [
    f"""SELECT ?p ?t ?cn WHERE {{
          ?p <{DBLP_VOC}creator> ?a .
          ?p <{DBLP_VOC}title> ?t .
          ?p <{DBLP_VOC}partOf> ?c .
          ?c <{DBLP_VOC}title> ?cn .
        }}""",
]

STAR_QUERY = BOOK_QUERIES[0]


def _config(**overrides) -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)), **overrides)


def _sorted_rows(store, text, options=None, **kwargs):
    result = store.sparql(text, options, **kwargs)
    return sorted(tuple(str(v) for v in row)
                  for row in store.decode_rows(result))


# -- results are observation-invariant ----------------------------------------


class TestDifferential:
    def test_book_corpus_profiled_results_identical(self, book_store):
        for text in BOOK_QUERIES:
            for options in SCHEMES:
                plain = _sorted_rows(book_store, text, options)
                profiled = _sorted_rows(book_store, text, options, profile=True)
                assert profiled == plain, (options.describe(), text)

    def test_dblp_corpus_profiled_results_identical(self, dblp_store):
        for text in DBLP_QUERIES:
            for options in SCHEMES:
                plain = _sorted_rows(dblp_store, text, options)
                profiled = _sorted_rows(dblp_store, text, options, profile=True)
                assert profiled == plain, (options.describe(), text)

    def test_profile_span_tree_matches_trace_span_tree(self, book_store):
        """Same operators, same nesting, same row counts as a plain trace."""
        def _walk(span):
            yield span
            for child in span.children:
                yield from _walk(child)

        for options in SCHEMES:
            book_store.sparql(STAR_QUERY, options, trace=True)
            traced = [(s.label, s.rows) for s in _walk(book_store.last_trace().root)]
            book_store.sparql(STAR_QUERY, options, profile=True)
            profile = book_store.last_trace()
            assert isinstance(profile, QueryProfile)
            profiled = [(s.label, s.rows) for s in _walk(profile.root)]
            assert profiled == traced, options.describe()


# -- attribution reconciles ----------------------------------------------------


class TestReconciliation:
    def test_self_page_reads_sum_to_pool_delta(self):
        store = RDFStore.build(book_triples(), config=_config())
        store.reset_cold()
        mark = store.pool.stats()
        store.sparql(STAR_QUERY, PlannerOptions(scheme=RDFSCAN_SCHEME),
                     profile=True)
        external = store.pool.snapshot_delta(mark)
        profile = store.last_trace()
        assert isinstance(profile, QueryProfile)

        spans = profile.spans()
        assert spans and all(isinstance(span, ProfileSpan) for span in spans)
        total_self = sum(span.self_page_reads for span in spans)
        # Σ per-operator self time == root cumulative == the pool's own delta
        assert total_self == profile.page_reads_total
        assert profile.page_reads_total == profile.buffers["page_reads"]
        assert profile.buffers["page_reads"] == external["page_reads"]
        assert profile.page_reads_total > 0  # the cold run really read pages
        assert profile.buffers["page_hits"] == external["page_hits"]

    def test_hot_run_reads_no_pages(self, book_store):
        book_store.sparql(STAR_QUERY)  # warm
        book_store.sparql(STAR_QUERY, profile=True)
        profile = book_store.last_trace()
        assert profile.page_reads_total == 0
        assert profile.page_hits_total > 0

    def test_payload_bytes_accumulate(self, book_store):
        book_store.sparql(STAR_QUERY, profile=True)
        profile = book_store.last_trace()
        assert profile.payload_bytes_total > 0
        assert profile.root.bytes > 0  # the root operator emitted batches

    def test_explain_analyze_carries_pages_column(self, book_store):
        text = book_store.explain(STAR_QUERY, analyze=True)
        assert "pages=" in text
        assert "buffers:" in text


# -- opt-in switches -----------------------------------------------------------


class TestSwitches:
    def test_profile_queries_config_profiles_every_run(self):
        store = RDFStore.build(book_triples(),
                               config=_config(profile_queries=True))
        store.sparql(STAR_QUERY)
        assert isinstance(store.last_trace(), QueryProfile)

    def test_default_runs_are_not_profiled(self):
        store = RDFStore.build(book_triples(), config=_config())
        store.sparql(STAR_QUERY)
        # an untraced run leaves no trace behind at all
        assert store.last_trace() is None

    def test_trace_flag_still_yields_plain_trace(self, book_store):
        book_store.sparql(STAR_QUERY, trace=True)
        trace = book_store.last_trace()
        assert isinstance(trace, QueryTrace)
        assert not isinstance(trace, QueryProfile)

    def test_sql_frontend_profiles(self, book_store):
        catalog = book_store.require_catalog()
        table = next(iter(catalog.tables.values())).name
        book_store.sql(f"SELECT * FROM {table}", profile=True)
        assert isinstance(book_store.last_trace(), QueryProfile)

    def test_snapshot_reads_honor_profile_flag(self, book_store):
        with book_store.snapshot() as snap:
            result = snap.sparql(STAR_QUERY, profile=True)
            assert len(result) > 0

    def test_config_validates_profile_flags(self):
        with pytest.raises(StorageError):
            StoreConfig(profile_queries="yes")
        with pytest.raises(StorageError):
            StoreConfig(profile_memory=1.5)


# -- tracemalloc sampling ------------------------------------------------------


class TestMemorySampling:
    def test_memory_peaks_recorded_and_rendered(self):
        store = RDFStore.build(book_triples(), config=_config(
            profile_queries=True, profile_memory=True))
        store.sparql(STAR_QUERY)
        profile = store.last_trace()
        assert profile.mem_peak > 0
        rendered = profile.render()
        assert "mem=" in rendered

    def test_memory_off_by_default(self, book_store):
        book_store.sparql(STAR_QUERY, profile=True)
        profile = book_store.last_trace()
        assert profile.mem_peak == 0
        assert "mem=" not in profile.render()


# -- observer integration ------------------------------------------------------


class TestObserverIntegration:
    def test_profiled_runs_feed_profile_histograms(self):
        store = RDFStore.build(book_triples(),
                               config=_config(profile_queries=True))
        store.sparql(STAR_QUERY)
        histogram = store.metrics_registry.get("query_profile_seconds")
        assert histogram is not None and histogram.count() == 1
        pages = store.metrics_registry.get("query_profile_page_reads")
        assert pages.count() == 1

    def test_unprofiled_runs_do_not(self, book_store):
        before = book_store.metrics_registry.get("query_profile_seconds").count()
        book_store.sparql(STAR_QUERY)
        after = book_store.metrics_registry.get("query_profile_seconds").count()
        assert after == before

    def test_summary_digest_mentions_pages(self, book_store):
        book_store.sparql(STAR_QUERY, profile=True)
        assert "pages=" in book_store.last_trace().summary()


# -- formatting ----------------------------------------------------------------


class TestFormatBytes:
    def test_scales(self):
        assert format_bytes(0) == "0B"
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"
        assert format_bytes(5 * 1024 ** 3) == "5.0GB"


# -- the overhead budget -------------------------------------------------------


class TestProfilingOverheadGuard:
    def test_disabled_profiling_within_five_percent(self):
        """With profiling off, the feature must cost nothing measurable:
        ``store.sparql()`` stays within 5% of the bare engine path (the same
        budget the tracing layer honors)."""
        store = RDFStore.build(book_triples(), config=_config())
        engine = store.sparql_engine()
        options = PlannerOptions()
        store.sparql(STAR_QUERY, options)  # warm plan cache + buffer pool
        repeats = 30

        def best_mean(fn) -> float:
            best = None
            for _ in range(7):
                started = time.perf_counter()
                for _ in range(repeats):
                    fn()
                mean = (time.perf_counter() - started) / repeats
                best = mean if best is None else min(best, mean)
            return best

        bare = best_mean(lambda: engine.query(STAR_QUERY, options))
        observed = best_mean(lambda: store.sparql(STAR_QUERY, options))
        # 5% relative, with a 50µs absolute floor against timer jitter
        assert observed <= bare * 1.05 + 5e-5, \
            f"profiling-off path {observed * 1e6:.0f}us vs bare {bare * 1e6:.0f}us"
