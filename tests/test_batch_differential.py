"""Batched-vs-row differential oracle.

The batched executor must be observably identical to row-at-a-time
execution: every query in the existing corpora (book / DBLP / RDF-H) runs
under ``batch_size`` 1 (the row-at-a-time oracle), 3 (forces many small
batches, so duplicates and matches straddle batch boundaries) and 1024
(the production default), on all four plan schemes — pre- and
post-compaction, with pending deltas, and under an open MVCC snapshot —
and the sorted decoded results must match exactly.

The operators are also *order*-invariant across batch sizes (that is what
makes ``LIMIT`` safe), which a dedicated test pins down with unsorted
comparisons.
"""

from __future__ import annotations

import re

from contextlib import contextmanager

import pytest

from _datasets import EX, book_triples
from repro import RDFStore, StoreConfig
from repro.bench import q1_sparql, q3_sparql, q6_sparql, star_fk_hop_sparql
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
)

BATCH_SIZES = [1, 3, 1024]

SCHEMES = [
    PlannerOptions(scheme=DEFAULT_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME),
    PlannerOptions(scheme=OPTIMIZED_SCHEME),
    PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True),
]

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

BOOK_QUERIES = [
    f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}",
    f"SELECT ?b WHERE {{ ?b <{EX}has_author> <{EX}author/1> . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . FILTER(?y >= 1998) }}",
    f"SELECT (COUNT(?b) AS ?c) WHERE {{ ?b <{EX}isbn_no> ?i . }}",
    f"SELECT DISTINCT ?a WHERE {{ ?b <{EX}has_author> ?a . }}",
    f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . }} ORDER BY ?y ?b LIMIT 7",
    f"PREFIX ex: <{EX}> SELECT ?n (COUNT(?b) AS ?c) WHERE {{"
    f" ?b ex:has_author ?a . ?a ex:name ?n . }} GROUP BY ?n ORDER BY ?n",
]

DBLP_VOC = "http://example.org/dblp/schema/"

DBLP_QUERIES = [
    f"""SELECT ?p ?t ?cn WHERE {{
          ?p <{DBLP_VOC}creator> ?a .
          ?p <{DBLP_VOC}title> ?t .
          ?p <{DBLP_VOC}partOf> ?c .
          ?c <{DBLP_VOC}title> ?cn .
          ?a <{DBLP_VOC}name> ?n .
        }}""",
    f"""SELECT ?p ?t WHERE {{
          ?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{DBLP_VOC}Inproceedings> .
          ?p <{DBLP_VOC}title> ?t .
        }}""",
]

RDFH_QUERIES = [q6_sparql(), q3_sparql(), q1_sparql(), star_fk_hop_sparql()]


def _config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


@contextmanager
def batch_size(store: RDFStore, size: int):
    """Temporarily run the store's executor at the given batch size.

    The knob lives on the config and is read into each execution context at
    query time; cached plans are size-agnostic, so flipping it between runs
    of the same (cached) plan is exactly the comparison we want.
    """
    saved = store.config.batch_size
    store.config.batch_size = size
    try:
        yield store
    finally:
        store.config.batch_size = saved


def _sorted_decoded(store: RDFStore, text: str, options=None) -> list:
    rows = store.decode_rows(store.sparql(text, options))
    return sorted(tuple(str(v) for v in row) for row in rows)


def _decoded(store: RDFStore, text: str, options=None) -> list:
    rows = store.decode_rows(store.sparql(text, options))
    return [tuple(str(v) for v in row) for row in rows]


def assert_batch_sizes_agree(store: RDFStore, queries, schemes=SCHEMES) -> None:
    for text in queries:
        for options in schemes:
            with batch_size(store, 1):
                expected = _sorted_decoded(store, text, options)
            for size in BATCH_SIZES[1:]:
                with batch_size(store, size):
                    got = _sorted_decoded(store, text, options)
                assert got == expected, \
                    (f"batch_size={size} diverged from row-at-a-time on "
                     f"{options.describe()}: {text!r}")


# -- read-only corpora sweeps ----------------------------------------------------------


def test_book_corpus_all_schemes_all_batch_sizes(book_store):
    assert_batch_sizes_agree(book_store, BOOK_QUERIES)


def test_dblp_corpus_all_schemes_all_batch_sizes(dblp_store):
    assert_batch_sizes_agree(dblp_store, DBLP_QUERIES)


def test_rdfh_corpus_all_schemes_all_batch_sizes(rdfh_store):
    assert_batch_sizes_agree(rdfh_store, RDFH_QUERIES)


def test_rdfh_parseorder_corpus_batch_sizes(rdfh_parseorder_store):
    # the un-clustered baseline exercises the index-merge scan path
    assert_batch_sizes_agree(rdfh_parseorder_store, RDFH_QUERIES[:2])


def test_row_order_is_batch_size_invariant(book_store):
    """Stronger than the sorted oracle: identical *unsorted* row order.

    This is the invariant that makes LIMIT safe — at any batch size the
    executor must pick the same rows, so the full streams must agree
    element by element.
    """
    for text in BOOK_QUERIES:
        for options in SCHEMES:
            with batch_size(book_store, 1):
                expected = _decoded(book_store, text, options)
            for size in BATCH_SIZES[1:]:
                with batch_size(book_store, size):
                    assert _decoded(book_store, text, options) == expected, \
                        (size, options.describe(), text)


# -- pending deltas, compaction, MVCC snapshots ----------------------------------------


UPDATES = [
    f'INSERT DATA {{ <{EX}book/new1> <{EX}has_author> <{EX}author/2> . }}',
    f'INSERT DATA {{ <{EX}book/new1> <{EX}in_year> "2003"^^<{XSD_INT}> . }}',
    f'INSERT DATA {{ <{EX}book/new1> <{EX}isbn_no> "isbn-new-1" . }}',
    f'DELETE WHERE {{ <{EX}book/3> ?p ?o . }}',
    f'DELETE DATA {{ <{EX}book/5> <{EX}has_author> <{EX}author/0> . }}',
    f'INSERT DATA {{ <{EX}book/7> <{EX}has_author> <{EX}author/4> . }}',
]


def test_pending_deltas_then_compaction_agree_across_batch_sizes():
    store = RDFStore.build(book_triples(), config=_config())
    for update in UPDATES:
        store.update(update)
    assert store.delta is not None and not store.delta.is_empty()
    assert_batch_sizes_agree(store, BOOK_QUERIES)      # MergeScan / delta path
    store.compact()
    assert_batch_sizes_agree(store, BOOK_QUERIES)      # rebuilt base, empty delta


def test_open_mvcc_snapshot_agrees_across_batch_sizes():
    """Snapshots pinned at different batch sizes over the *same* version must
    answer identically — even while later writes and a compaction land."""
    store = RDFStore.build(book_triples(), config=_config())
    store.update(UPDATES[0])

    snapshots = []
    for size in BATCH_SIZES:
        with batch_size(store, size):
            snapshots.append(store.snapshot())
    try:
        # mutate underneath the pins: the snapshots must not notice
        for update in UPDATES[1:]:
            store.update(update)
        store.compact()

        for text in BOOK_QUERIES:
            for options in SCHEMES:
                results = [
                    sorted(tuple(str(v) for v in row)
                           for row in snap.decode_rows(snap.sparql(text, options)))
                    for snap in snapshots
                ]
                assert results[1] == results[0], (3, options.describe(), text)
                assert results[2] == results[0], (1024, options.describe(), text)
    finally:
        for snap in snapshots:
            snap.close()


def test_explain_analyze_tree_identical_across_batch_sizes():
    """``explain(analyze=True)`` reports rows, never batches.

    The plan tree's ``est=… actual=…`` annotations must be byte-identical
    whether the run streamed 1024-row batches or single rows.  (The header
    carries run-dependent cost counters and buffer stats, so only the tree
    is compared.  The query has no LIMIT: early termination legitimately
    changes how many rows upstream operators emit.)
    """
    store = RDFStore.build(book_triples(), config=_config())
    query = BOOK_QUERIES[0]

    def tree(text: str) -> list:
        lines = text.splitlines()
        kept = [line for line in lines if not line.startswith(("plan [", "buffers:"))]
        # per-operator time=/pages=/mem= annotations are wall-clock and
        # cache-state dependent and legitimately differ between runs; the
        # row accounting must not
        return [re.sub(r" (?:time=[0-9.]+ms|pages=\d+|mem=\S+)", "", line)
                for line in kept]

    for options in SCHEMES:
        with batch_size(store, 1):
            row_mode = tree(store.explain(query, options, analyze=True))
        assert any("actual=" in line for line in row_mode)
        with batch_size(store, 1024):
            batched = tree(store.explain(query, options, analyze=True))
        assert batched == row_mode, options.describe()


def test_snapshot_context_pins_batch_size():
    store = RDFStore.build(book_triples(), config=_config())
    with batch_size(store, 3):
        with store.snapshot() as snap:
            assert snap.context.batch_size == 3
    with store.snapshot() as snap:
        assert snap.context.batch_size == store.config.batch_size
