"""Concurrency tests: undo logs, MVCC snapshots, locks, and stress runs.

The invariants under test:

* **request atomicity via undo logs** — a failed request rolls back by
  replaying only the keys it touched (never a full-delta copy), leaving the
  pre-request state bit-identical;
* **snapshot isolation** — a pinned :class:`ReadSnapshot` answers (and
  decodes) identically across concurrent updates, compactions and
  checkpoints; readers never observe a half-applied request ("torn read");
* **deferred reclaim** — compacting while a snapshot is open must not evict
  the pinned delta version's index pages until the snapshot is released;
* **final-state equivalence** — after a concurrent run, the store equals a
  fresh store that applied the same updates serially.

The stress tests run ``READERS`` (≥ 8) reader threads against one writer
hammering update/query/compact/checkpoint.
"""

from __future__ import annotations

import threading
import time

import pytest

from _datasets import EX, book_triples
from repro import QueryServer, RDFStore, StoreConfig, StoreService
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.errors import PersistenceError, StorageError
from repro.server import ReadWriteLock
from repro.updates import DeltaStore, FrozenDelta

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

READERS = 8
WRITER_REQUESTS = 60

PAIR_LEFT = f"{EX}left"
PAIR_RIGHT = f"{EX}right"

AUTHOR_QUERY = f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . }}"


def _config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


def build_store() -> RDFStore:
    return RDFStore.build(book_triples(), config=_config())


def pair_update(i: int) -> str:
    """One atomic request inserting a left/right triple *pair*.

    Snapshot isolation makes the pair indivisible: any reader must count
    exactly as many lefts as rights, or it has seen a torn request.
    """
    return (f"INSERT DATA {{ "
            f"<{EX}item/{i}> <{PAIR_LEFT}> \"L{i}\" . "
            f"<{EX}item/{i}> <{PAIR_RIGHT}> \"R{i}\" . }}")


PAIR_COUNT_LEFT = f"SELECT (COUNT(?s) AS ?c) WHERE {{ ?s <{PAIR_LEFT}> ?v . }}"
PAIR_COUNT_RIGHT = f"SELECT (COUNT(?s) AS ?c) WHERE {{ ?s <{PAIR_RIGHT}> ?v . }}"


def _count(snapshot, query: str) -> int:
    rows = snapshot.sparql(query).rows()
    return int(rows[0][0]) if rows else 0


# -- undo log -----------------------------------------------------------------------


class TestUndoLog:
    def test_failed_request_rolls_back_exactly(self, monkeypatch):
        store = build_store()
        store.update(f'INSERT DATA {{ <{EX}pre> <{PAIR_LEFT}> "pre" . }}')
        before_inserts = dict(store.delta._inserts)
        before_tombs = set(store.delta._tombstones)

        def boom(text):
            raise PersistenceError("simulated WAL failure")

        monkeypatch.setattr(store.journal, "record", boom)
        with pytest.raises(PersistenceError):
            store.update(
                f'INSERT DATA {{ <{EX}item/1> <{PAIR_LEFT}> "L1" . }} ; '
                f'DELETE DATA {{ <{EX}pre> <{PAIR_LEFT}> "pre" . }}')
        assert dict(store.delta._inserts) == before_inserts
        assert set(store.delta._tombstones) == before_tombs
        # the store still works after a rollback
        monkeypatch.undo()
        store.update(pair_update(2))
        assert store.delta.insert_count() == len(before_inserts) + 2

    def test_undo_cost_is_per_request_not_per_pending(self):
        """The log records touched keys only — the O(N) full-delta copy is gone."""
        delta = DeltaStore()
        for i in range(1000):
            delta.insert(i, 1, 2, in_base=False)
        undo = delta.begin_request()
        delta.insert(5000, 1, 2, in_base=False)
        delta.delete(3, 1, 2, in_base=False)
        assert len(undo) == 2  # not 1002
        delta.abort_request(undo)
        assert delta.insert_count() == 1000
        assert delta.contains_insert(3, 1, 2)
        assert not delta.contains_insert(5000, 1, 2)

    def test_rollback_restores_tombstones_and_resurrections(self):
        delta = DeltaStore()
        delta.insert(1, 2, 3, in_base=False)
        delta.delete(10, 2, 3, in_base=True)  # pre-existing tombstone
        undo = delta.begin_request()
        delta.insert(10, 2, 3, in_base=True)   # resurrect
        delta.delete(20, 2, 3, in_base=True)   # new tombstone
        delta.delete(1, 2, 3, in_base=False)   # remove pending insert
        delta.abort_request(undo)
        assert delta.is_tombstoned(10, 2, 3)
        assert not delta.is_tombstoned(20, 2, 3)
        assert delta.contains_insert(1, 2, 3)

    def test_requests_cannot_nest(self):
        delta = DeltaStore()
        log = delta.begin_request()
        with pytest.raises(StorageError):
            delta.begin_request()
        delta.commit_request(log)
        with pytest.raises(StorageError):
            delta.commit_request(log)


# -- MVCC snapshots -----------------------------------------------------------------


class TestReadSnapshots:
    def test_snapshot_does_not_see_later_updates(self):
        store = build_store()
        with store.snapshot() as snap:
            before = sorted(snap.decode_rows(snap.sparql(AUTHOR_QUERY)))
            store.update(pair_update(1))
            store.update(f'DELETE WHERE {{ <{EX}book/3> ?p ?o . }}')
            assert sorted(snap.decode_rows(snap.sparql(AUTHOR_QUERY))) == before
        # a fresh snapshot sees the new state
        with store.snapshot() as fresh:
            after = sorted(fresh.decode_rows(fresh.sparql(AUTHOR_QUERY)))
        assert len(after) == len(before) - 1

    def test_snapshot_survives_compaction_and_decodes_pinned_terms(self):
        """Compaction re-maps literal OIDs; a pinned snapshot must keep
        decoding through the dictionary it was pinned with."""
        store = build_store()
        year_query = f"SELECT ?b ?y WHERE {{ ?b <{EX}in_year> ?y . }}"
        # "0 first" sorts before every existing literal, so the value-order
        # restore at compaction re-maps a large prefix of literal OIDs
        store.update(f'INSERT DATA {{ <{EX}book/new> <{EX}in_year> '
                     f'"1000"^^<{XSD_INT}> . }}')
        snap = store.snapshot()
        before = sorted(snap.decode_rows(snap.sparql(year_query)))
        report = store.compact()
        assert report.merged_inserts == 1
        assert sorted(snap.decode_rows(snap.sparql(year_query))) == before
        assert store.dictionary is not snap.context.dictionary  # copy-on-write
        snap.close()

    def test_snapshot_survives_checkpoint(self, tmp_path):
        store = build_store()
        store.update(pair_update(1))
        snap = store.snapshot()
        left = _count(snap, PAIR_COUNT_LEFT)
        store.checkpoint(tmp_path / "db")
        store.update(pair_update(2))
        assert _count(snap, PAIR_COUNT_LEFT) == left
        snap.close()
        with store.snapshot() as fresh:
            assert _count(fresh, PAIR_COUNT_LEFT) == left + 1

    def test_live_triple_count_is_pinned(self):
        """The snapshot's count uses the base size captured at pin time —
        even on stores without the exhaustive indexes."""
        config = _config()
        config.build_exhaustive_indexes = False
        store = RDFStore.build(book_triples(), config=config)
        base = store.triple_count()
        with store.snapshot() as snap:
            assert snap.live_triple_count() == base
            store.update(pair_update(1))
            store.compact()
            assert snap.live_triple_count() == base  # not the compacted base
        assert store.live_triple_count() == base + 2

    def test_snapshot_sql_matches_sparql_epoch(self):
        store = build_store()
        snap = store.snapshot()
        rows = snap.sql("SELECT isbn_no FROM Book ORDER BY isbn_no")
        store.update(f'DELETE WHERE {{ <{EX}book/1> ?p ?o . }}')
        assert len(snap.sql("SELECT isbn_no FROM Book ORDER BY isbn_no")) == len(rows)
        snap.close()

    def test_closed_snapshot_refuses_queries(self):
        store = build_store()
        snap = store.snapshot()
        snap.close()
        snap.close()  # idempotent
        with pytest.raises(StorageError):
            snap.sparql(AUTHOR_QUERY)

    def test_frozen_delta_is_immutable(self):
        store = build_store()
        store.update(pair_update(1))
        frozen = store.delta.freeze()
        assert isinstance(frozen, FrozenDelta)
        assert frozen.insert_count() == store.delta.insert_count()
        with pytest.raises(StorageError):
            frozen.insert(1, 2, 3, in_base=False)
        with pytest.raises(StorageError):
            frozen.delete(1, 2, 3, in_base=True)
        with pytest.raises(StorageError):
            frozen.clear()

    def test_snapshots_of_one_version_share_a_plan_cache(self):
        """Concurrent readers at the same version amortize parse + plan; a
        write rotates the cache so stale plans never cross versions."""
        store = build_store()
        with store.snapshot() as a, store.snapshot() as b:
            a.sparql(AUTHOR_QUERY)
            b.sparql(AUTHOR_QUERY)  # same version: planned once, hit once
            stats = b._engine.plan_cache.stats()
            assert stats["hits"] >= 1
        store.update(pair_update(1))
        with store.snapshot() as c:
            c.sparql(AUTHOR_QUERY)  # new version: fresh cache, no stale hit
            assert c._engine.plan_cache.stats()["hits"] == 0

    def test_open_snapshot_count_tracks_pins(self):
        store = build_store()
        assert store.open_snapshot_count() == 0
        a = store.snapshot()
        b = store.snapshot()
        assert store.open_snapshot_count() == 2
        a.close()
        b.close()
        assert store.open_snapshot_count() == 0
        assert "open_snapshots" not in store.storage_summary()


class TestDeferredSegmentReclaim:
    def test_compact_defers_reclaim_until_snapshot_release(self):
        """Regression: compacting (or further updates) while a read snapshot
        is open must not evict the pinned delta version's index pages; they
        are reclaimed when the last snapshot releases."""
        store = build_store()
        store.update(pair_update(1))
        snap = store.snapshot()
        prefix = store.delta._segment_prefix(snap.delta_version)
        before = sorted(snap.decode_rows(snap.sparql(PAIR_COUNT_LEFT)))
        assert store.pool.segments_cached(prefix) > 0  # the query touched them
        store.update(pair_update(2))     # supersedes the pinned version
        store.compact()                  # clears the delta entirely
        assert store.pool.segments_cached(prefix) > 0, \
            "pinned delta segments were reclaimed under an open snapshot"
        assert sorted(snap.decode_rows(snap.sparql(PAIR_COUNT_LEFT))) == before
        snap.close()
        assert store.pool.segments_cached(prefix) == 0, \
            "superseded delta segments must be reclaimed at release"

    def test_unpinned_versions_are_reclaimed_immediately(self):
        store = build_store()
        store.update(pair_update(1))
        version = store.delta.version
        store.sparql(PAIR_COUNT_LEFT)  # builds the delta index
        prefix = store.delta._segment_prefix(version)
        assert store.pool.segments_cached(prefix) > 0
        store.update(pair_update(2))   # no snapshot open: dropped eagerly
        assert store.pool.segments_cached(prefix) == 0

    def test_unpin_never_evicts_the_live_current_index(self):
        """Regression: a release of the current version must not drop pages
        the live store's own index is actively using — even when an earlier
        snapshot-only build queued that version for deferred reclaim."""
        store = build_store()
        store.update(pair_update(1))
        version = store.delta.version
        prefix = store.delta._segment_prefix(version)
        with store.snapshot() as snap:
            snap.sparql(PAIR_COUNT_LEFT)   # frozen view builds the index
        # close queued the version (live index was unbuilt); now the live
        # store builds and uses the same version's index
        store.sparql(PAIR_COUNT_LEFT)
        assert store.pool.segments_cached(prefix) > 0
        with store.snapshot() as again:
            again.sparql(PAIR_COUNT_LEFT)
        assert store.pool.segments_cached(prefix) > 0, \
            "unpin evicted the live, current delta index"
        store.update(pair_update(2))       # supersession reclaims them
        assert store.pool.segments_cached(prefix) == 0

    def test_snapshot_built_index_pages_do_not_leak(self):
        """Regression: when only the *frozen view* built the delta index
        (the live store never queried), releasing the snapshot before the
        version is superseded must not strand its pages in the pool."""
        store = build_store()
        store.update(pair_update(1))   # live index stays unbuilt
        snap = store.snapshot()
        prefix = store.delta._segment_prefix(snap.delta_version)
        snap.sparql(PAIR_COUNT_LEFT)   # frozen view builds the index
        assert store.pool.segments_cached(prefix) > 0
        snap.close()                   # version still current at release
        store.update(pair_update(2))   # supersede: queued pages must drop
        assert store.pool.segments_cached(prefix) == 0


# -- the lock ------------------------------------------------------------------------


class TestReadWriteLock:
    def test_write_is_reentrant(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                assert lock.owns_write()
        assert not lock.owns_write()

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        lock.acquire_write()
        blocked = threading.Event()

        def reader():
            blocked.set()
            with lock.read_locked():
                observed.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        blocked.wait(timeout=5)
        time.sleep(0.05)
        assert observed == []  # reader is waiting
        lock.release_write()
        thread.join(timeout=5)
        assert observed == ["read"]

    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert lock.active_readers == 0

    def test_write_lock_passes_through_read(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():  # must not deadlock
                assert lock.owns_write()

    def test_phase_fairness_neither_side_starves(self):
        """A writer re-acquiring back-to-back must not starve readers, and a
        stream of overlapping readers must not starve the writer."""
        lock = ReadWriteLock()
        stop = threading.Event()
        progress = {"reads": 0, "writes": 0}

        def reader():
            while not stop.is_set():
                with lock.read_locked():
                    progress["reads"] += 1

        def writer():
            while not stop.is_set():
                with lock.write_locked():
                    progress["writes"] += 1

        threads = ([threading.Thread(target=reader) for _ in range(4)]
                   + [threading.Thread(target=writer)])
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        assert progress["reads"] > 50, progress
        assert progress["writes"] > 50, progress


# -- stress: N readers + 1 writer ----------------------------------------------------


def _run_stress(store: RDFStore, writer, readers: int = READERS,
                duration: float = 2.0):
    """Run ``writer`` against ``readers`` snapshot-pinning reader threads.

    Returns the list of reader-observed errors (must be empty).
    """
    errors: list = []
    stop = threading.Event()

    def read_loop():
        try:
            while not stop.is_set():
                with store.snapshot() as snap:
                    left = _count(snap, PAIR_COUNT_LEFT)
                    right = _count(snap, PAIR_COUNT_RIGHT)
                    if left != right:
                        errors.append(f"torn read: {left} lefts vs {right} rights")
                    # repeatable read inside one snapshot
                    if _count(snap, PAIR_COUNT_LEFT) != left:
                        errors.append("snapshot result changed between reads")
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(repr(exc))

    threads = [threading.Thread(target=read_loop, name=f"reader-{i}")
               for i in range(readers)]
    for thread in threads:
        thread.start()
    try:
        writer(stop)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)
    return errors


class TestStress:
    def test_readers_never_observe_torn_updates(self):
        store = build_store()
        applied = []

        def writer(stop):
            for i in range(WRITER_REQUESTS):
                text = pair_update(i)
                store.update(text)
                applied.append(text)
                if i % 20 == 19:
                    store.compact()

        errors = _run_stress(store, writer)
        assert errors == []
        # final-state equivalence with serial replay on a fresh store
        serial = build_store()
        for text in applied:
            serial.update(text)
        with store.snapshot() as got, serial.snapshot() as want:
            assert _count(got, PAIR_COUNT_LEFT) == _count(want, PAIR_COUNT_LEFT) \
                == WRITER_REQUESTS
            assert (sorted(got.decode_rows(got.sparql(AUTHOR_QUERY)))
                    == sorted(want.decode_rows(want.sparql(AUTHOR_QUERY))))

    def test_readers_with_checkpointing_writer(self, tmp_path):
        store = build_store()
        db = tmp_path / "db"

        def writer(stop):
            for i in range(WRITER_REQUESTS // 2):
                store.update(pair_update(i))
                if i % 10 == 9:
                    store.checkpoint(db)

        errors = _run_stress(store, writer)
        assert errors == []
        reopened = RDFStore.open(db)
        with reopened.snapshot() as snap:
            # every request acknowledged before the last checkpoint (plus the
            # WAL tail) is present and un-torn after recovery
            assert _count(snap, PAIR_COUNT_LEFT) == _count(snap, PAIR_COUNT_RIGHT)

    def test_query_server_mixed_workload(self):
        store = build_store()
        with QueryServer(store, workers=READERS) as server:
            futures = []
            for i in range(WRITER_REQUESTS // 2):
                futures.append(server.submit_update(pair_update(i)))
                futures.append(server.submit_query(PAIR_COUNT_LEFT))
                futures.append(server.submit_sql(
                    "SELECT isbn_no FROM Book ORDER BY isbn_no"))
            results = [future.result(timeout=60) for future in futures]
        assert len(results) == 3 * (WRITER_REQUESTS // 2)
        inserted = sum(result.inserted for result in results[::3])
        assert inserted == 2 * (WRITER_REQUESTS // 2)
        with store.snapshot() as snap:
            assert _count(snap, PAIR_COUNT_LEFT) == WRITER_REQUESTS // 2

    def test_service_decodes_under_concurrent_compaction(self):
        """decode=True must decode under the same snapshot the query ran on,
        even while the writer compacts (which re-maps literal OIDs)."""
        store = build_store()
        service = StoreService(store)
        errors: list = []
        stop = threading.Event()
        query = f"SELECT ?v WHERE {{ ?s <{PAIR_LEFT}> ?v . }}"

        def read_loop():
            try:
                while not stop.is_set():
                    rows = service.query(query, decode=True)
                    for (value,) in rows:
                        if not (isinstance(value, str) and value.startswith("L")):
                            errors.append(f"mis-decoded value {value!r}")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(repr(exc))

        threads = [threading.Thread(target=read_loop) for _ in range(READERS)]
        for thread in threads:
            thread.start()
        try:
            for i in range(30):
                service.update(pair_update(i))
                if i % 5 == 4:
                    service.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert errors == []
        assert service.stats()["open_snapshots"] == 0


class TestSessions:
    def test_sticky_session_repeatable_reads(self):
        store = build_store()
        with store.session() as session:
            session.begin()
            first = session.sparql(AUTHOR_QUERY, decode=True)
            session.update(pair_update(1))
            assert session.sparql(AUTHOR_QUERY, decode=True) == first
            session.end()
            session.begin()
            assert session.snapshot is not None
        # context-manager exit released the sticky snapshot
        assert store.open_snapshot_count() == 0

    def test_auto_session_sees_latest(self):
        store = build_store()
        session = store.session()
        rows = session.sparql(PAIR_COUNT_LEFT).rows()
        before = int(rows[0][0]) if rows else 0
        session.update(pair_update(9))
        after = int(session.sparql(PAIR_COUNT_LEFT).rows()[0][0])
        assert after == before + 1

    def test_double_begin_rejected(self):
        store = build_store()
        session = store.session()
        session.begin()
        with pytest.raises(StorageError):
            session.begin()
        session.end()
