"""Setuptools shim so the package installs in fully offline environments.

All real metadata lives in ``pyproject.toml``; this file only exists because
the environment has no ``wheel`` package, which PEP 660 editable installs
require.  ``pip install -e . --no-use-pep517 --no-build-isolation`` (or
``python setup.py develop``) works with setuptools alone.
"""

from setuptools import setup

setup()
