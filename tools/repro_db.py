#!/usr/bin/env python3
"""repro_db — command-line front door to the persistence layer.

Build a database from RDF, reopen it, query it, inspect it::

    # parse + discover + cluster + save
    python tools/repro_db.py save data.nt mydb/

    # sanity-open: restore + WAL replay, report what came back
    python tools/repro_db.py open mydb/

    # run SPARQL (default) or SQL against a saved database
    python tools/repro_db.py query mydb/ 'SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }'
    python tools/repro_db.py query mydb/ --sql 'SELECT * FROM Book'

    # run one query under the resource profiler (per-operator CPU, rows,
    # page reads, payload bytes; --memory adds tracemalloc peaks)
    python tools/repro_db.py profile mydb/ 'SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }'

    # apply a SPARQL Update (logged to the WAL), optionally checkpoint
    python tools/repro_db.py update mydb/ 'INSERT DATA { <http://x/s> <http://x/p> "v" . }'
    python tools/repro_db.py checkpoint mydb/

    # manifest + schema + buffer statistics
    python tools/repro_db.py info mydb/

    # live metrics: storage, buffer pool, plan cache, Prometheus exposition
    python tools/repro_db.py stats mydb/
    python tools/repro_db.py stats mydb/ --prometheus

    # refreshing live view of a running server's in-flight queries
    python tools/repro_db.py top http://127.0.0.1:9090

Exit status is 0 on success, 1 on any repro error (bad input, corrupt
database, unsupported query), with the message on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    RDFStore,
    ReproError,
    WriteAheadLog,
    default_registry,
    render_prometheus,
)
from repro.obs import format_bytes  # noqa: E402
from repro.persist import MANIFEST_FILE, SnapshotReader  # noqa: E402
from repro.persist.snapshot import wal_path  # noqa: E402
from repro.rio import load_graph  # noqa: E402


def cmd_save(args: argparse.Namespace) -> int:
    graph = load_graph(Path(args.source), syntax=args.syntax)
    store = RDFStore.build(graph, cluster=not args.no_cluster)
    info = store.save(args.database)
    print(f"saved {info.triples} triples / {info.terms} terms to {info.path} "
          f"({info.files} files, {info.data_bytes / 1024:.0f} KiB, epoch {info.epoch[:8]})")
    return 0


def cmd_open(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    summary = store.storage_summary()
    print(f"opened {summary['triples']} triples, {summary['terms']} terms, "
          f"{summary.get('tables', 0)} tables, clustered={summary['clustered']}")
    if store.has_pending_updates():
        print(f"replayed WAL: {store.delta.insert_count()} pending inserts, "
              f"{store.delta.tombstone_count()} pending deletes")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    if args.sql:
        result = store.sql(args.query)
    else:
        result = store.sparql(args.query)
    for row in store.decode_rows(result):
        print("\t".join("NULL" if value is None else str(value) for value in row))
    print(f"-- {len(result)} rows ({result.cost.describe()})", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    if args.memory:
        store.config.profile_memory = True
    if args.sql:
        result = store.sql(args.query, profile=True)
    else:
        result = store.sparql(args.query, profile=True)
    profile = store.last_trace()
    print(profile.render())
    print()
    print(f"rows:        {len(result)}")
    print(f"page reads:  {profile.page_reads_total} "
          f"(hits {profile.page_hits_total})")
    print(f"payload:     {format_bytes(profile.payload_bytes_total)} "
          f"moved between operators")
    if profile.buffers:
        pairs = ", ".join(f"{key}={value}"
                          for key, value in sorted(profile.buffers.items()))
        print(f"buffer pool: {pairs}")
    if profile.mem_peak:
        print(f"mem peak:    {format_bytes(profile.mem_peak)} "
              f"(tracemalloc, per-operator in the tree above)")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    result = store.update(args.request)
    durability = "logged to WAL" if result.changed else "no-op, not logged"
    print(f"inserted {result.inserted}, deleted {result.deleted} "
          f"({result.statements} statements, {durability})")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    report = store.checkpoint()
    print(report.describe())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    reader = SnapshotReader(args.database)
    manifest = reader.manifest
    print(f"database:   {args.database}")
    print(f"format:     {manifest['format']} v{manifest['format_version']} "
          f"(epoch {manifest['epoch'][:8]}, created {manifest['created_utc']})")
    print(f"triples:    {manifest['triples']}")
    print(f"terms:      {manifest['terms']} "
          f"(value-order watermark {manifest['value_order_watermark']})")
    print(f"clustered:  {manifest['clustered']}")
    index = manifest.get("index")
    if index:
        print(f"index:      {len(index['orders'])} permutations "
              f"({', '.join(sorted(index['orders']))})")
    clustered = manifest.get("clustered_store")
    if clustered:
        columns = sum(len(b["columns"]) for b in clustered["blocks"])
        zone_maps = sum(len(b["zone_maps"]) for b in clustered["blocks"])
        print(f"blocks:     {len(clustered['blocks'])} CS blocks, {columns} property "
              f"columns, {zone_maps} zone maps, "
              f"{clustered['irregular']['rows']} irregular triples")
    # read-only peek: info must not replay the WAL (that runs queries and
    # materializes columns) or recovery-truncate it (a write)
    records = WriteAheadLog.peek(wal_path(args.database)).record_count()
    if records:
        print(f"wal:        {records} update records pending replay "
              f"(run 'open' for the resulting delta sizes)")
    else:
        print("wal:        empty (checkpointed)")
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    store = RDFStore.open(args.database)
    if args.query:
        store.sparql(args.query)  # warm the metrics with one real query
    if args.prometheus:
        sys.stdout.write(render_prometheus(store.metrics_registry,
                                           default_registry()))
        return 0
    metrics = store.metrics()
    if args.json:
        payload = {
            "metrics": metrics,
            "slow_queries": [entry.as_dict() for entry in store.slow_queries()],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    summary = store.storage_summary()
    print(f"database:      {args.database}")
    print(f"triples:       {summary['triples']} ({summary['terms']} terms, "
          f"clustered={summary['clustered']})")
    pool = store.buffer_pool_stats()
    print(f"buffer pool:   {pool['cached_pages']} pages resident "
          f"({pool['resident_bytes'] / 1024:.0f} KiB), "
          f"{pool['page_hits']} hits / {pool['page_reads']} reads, "
          f"{pool['evictions']} evictions")
    cache = store.plan_cache.stats()
    print(f"plan cache:    {cache['size']} entries, "
          f"lifetime {cache['lifetime_hits']} hits / "
          f"{cache['lifetime_misses']} misses / "
          f"{cache['lifetime_evictions']} evictions")
    print(f"delta:         {store.delta.insert_count()} pending inserts, "
          f"{store.delta.tombstone_count()} tombstones, "
          f"version {store.delta.version}")
    slow = store.slow_queries()
    print(f"slow queries:  {len(slow)} logged "
          f"(threshold {store.config.slow_query_seconds * 1000:.0f}ms)")
    for entry in slow[:5]:
        print(f"  {entry.seconds * 1000:8.1f}ms  [{entry.frontend}] {entry.text[:70]}")
    print(f"metrics:       {len(metrics)} samples "
          f"(use --prometheus for the exposition text)")
    for key in sorted(metrics):
        if key.split("{")[0].endswith(("_p50", "_p95", "_p99", "_max", "_sum")):
            continue  # the human view keeps counts; percentiles stay in --json
        print(f"  {key} = {metrics[key]:g}")
    return 0


def _render_top(stats: dict, queries: list) -> list[str]:
    lines = [
        f"repro top — {stats.get('active_queries', len(queries))} active, "
        f"{stats.get('open_snapshots', 0)} snapshots pinned, "
        f"delta v{stats.get('delta_version', '?')} "
        f"({stats.get('pending_inserts', 0)} pending inserts, "
        f"{stats.get('pending_deletes', 0)} pending deletes)",
        f"{'ID':>5} {'SRC':<8} {'FE':<6} {'SCHEME':<9} {'TIME':>8} "
        f"{'ROWS':>9} {'PROG':>6} {'OP':<28} QUERY",
    ]
    for q in queries:
        progress = q.get("progress")
        prog = f"{progress * 100:5.1f}%" if progress is not None else "     -"
        flag = "!" if q.get("cancel_requested") else " "
        lines.append(
            f"{q['id']:>5} {q.get('source', '-'):<8} {q.get('frontend', '-'):<6} "
            f"{q.get('scheme', '-'):<9} {q.get('elapsed_seconds', 0.0):7.2f}s "
            f"{q.get('rows', 0):>9} {prog} {q.get('operator', '')[:28]:<28}{flag}"
            f"{q.get('text', '')[:60]}")
    if not queries:
        lines.append("  (no queries in flight)")
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base
    iterations = args.iterations
    count = 0
    while True:
        try:
            with urllib.request.urlopen(base + "/queries", timeout=5) as resp:
                queries = json.loads(resp.read())["queries"]
            with urllib.request.urlopen(base + "/stats", timeout=5) as resp:
                stats = json.loads(resp.read())
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        if not args.no_clear and count:
            sys.stdout.write("\033[2J\033[H")  # clear + home, like top(1)
        print("\n".join(_render_top(stats, queries)), flush=True)
        count += 1
        if iterations and count >= iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro_db", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_save = sub.add_parser("save", help="build a store from RDF and save it")
    p_save.add_argument("source", help="RDF file (N-Triples or Turtle)")
    p_save.add_argument("database", help="target database directory")
    p_save.add_argument("--syntax", choices=["ntriples", "turtle"], default=None,
                        help="input syntax (default: inferred from extension)")
    p_save.add_argument("--no-cluster", action="store_true",
                        help="skip subject clustering (ParseOrder baseline)")
    p_save.set_defaults(func=cmd_save)

    p_open = sub.add_parser("open", help="open a database and report its state")
    p_open.add_argument("database")
    p_open.set_defaults(func=cmd_open)

    p_query = sub.add_parser("query", help="run SPARQL (or --sql) against a database")
    p_query.add_argument("database")
    p_query.add_argument("query")
    p_query.add_argument("--sql", action="store_true", help="treat the query as SQL")
    p_query.set_defaults(func=cmd_query)

    p_profile = sub.add_parser(
        "profile", help="run one query with the resource profiler and print "
                        "per-operator CPU, rows, pages and bytes")
    p_profile.add_argument("database")
    p_profile.add_argument("query")
    p_profile.add_argument("--sql", action="store_true",
                           help="treat the query as SQL")
    p_profile.add_argument("--memory", action="store_true",
                           help="also sample tracemalloc peaks per operator")
    p_profile.set_defaults(func=cmd_profile)

    p_update = sub.add_parser("update", help="apply a SPARQL Update (WAL-logged)")
    p_update.add_argument("database")
    p_update.add_argument("request")
    p_update.set_defaults(func=cmd_update)

    p_ckpt = sub.add_parser("checkpoint", help="compact + snapshot + truncate the WAL")
    p_ckpt.add_argument("database")
    p_ckpt.set_defaults(func=cmd_checkpoint)

    p_info = sub.add_parser("info", help=f"print the {MANIFEST_FILE} summary")
    p_info.add_argument("database")
    p_info.add_argument("--json", action="store_true", help="also dump the raw manifest")
    p_info.set_defaults(func=cmd_info)

    p_stats = sub.add_parser(
        "stats", help="open a database and print its observability metrics")
    p_stats.add_argument("database")
    p_stats.add_argument("--query", default=None, metavar="SPARQL",
                         help="run one query first so latency metrics are live")
    p_stats.add_argument("--prometheus", action="store_true",
                         help="print the Prometheus text exposition instead")
    p_stats.add_argument("--json", action="store_true",
                         help="print the flat metrics dict as JSON")
    p_stats.set_defaults(func=cmd_stats)

    p_top = sub.add_parser(
        "top", help="refreshing live view of a server's in-flight queries")
    p_top.add_argument("url", help="base URL of a QueryServer metrics endpoint "
                                   "(e.g. http://127.0.0.1:9090)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default 1)")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N refreshes (default: run until ^C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append refreshes instead of clearing the screen")
    p_top.set_defaults(func=cmd_top)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
