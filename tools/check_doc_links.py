#!/usr/bin/env python3
"""Check that relative links in the repo's Markdown files resolve.

Scans every tracked ``*.md`` file for inline links and verifies that
relative targets exist on disk (external ``http(s)``/``mailto`` links and
pure in-page anchors are skipped). Exits non-zero listing every broken
link — used by CI's docs job and runnable locally:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", ".github", "node_modules", "__pycache__", ".pytest_cache"}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_file(path: Path, root: Path) -> list:
    broken = []
    for match in LINK_PATTERN.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target = target.split("#", 1)[0]  # drop in-page anchors
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append((path.relative_to(root), match.group(1)))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for path in markdown_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    if broken:
        print(f"broken links in {checked} markdown files:")
        for source, target in broken:
            print(f"  {source}: {target}")
        return 1
    print(f"ok: all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
