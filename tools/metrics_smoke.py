#!/usr/bin/env python3
"""metrics_smoke — end-to-end check of the observability layer.

Builds a small store, starts a :class:`~repro.server.QueryServer` with its
HTTP metrics endpoint, drives a mixed SPARQL / SQL / update workload through
the server, then scrapes ``GET /metrics`` over real HTTP and verifies:

  1. every sample line parses as Prometheus text format 0.0.4,
  2. the core metric families are present (query latency histogram,
     plan cache, buffer pool, WAL, lock wait, snapshot pins,
     active-query registry), and
  3. the counters the workload must have bumped are nonzero.

It then exercises the live query-management surface end to end: starts a
deliberately slow cross-join query on a batch-size-1 store, polls
``GET /queries`` until the query is visible, cancels it with
``GET /queries/cancel?id=``, and asserts the query unwound with
``QueryCancelledError`` and that the cancel shows up in the structured
event log.

Exit status 0 when all checks pass; any failure raises (nonzero exit).
CI runs this after the unit suite as a cheap wire-format regression gate.
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    QueryCancelledError,
    QueryServer,
    RDFStore,
    StoreConfig,
)
from repro.cs import DiscoveryConfig, GeneralizationConfig  # noqa: E402

RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"
EX = "http://example.org/"


def book_nt(books: int = 30, authors: int = 5) -> str:
    """A deterministic bibliographic graph (emerges Book and Person tables)."""
    lines = []
    for i in range(authors):
        author = f"<{EX}author/{i}>"
        lines.append(f"{author} <{RDF_TYPE}> <{EX}Person> .")
        lines.append(f'{author} <{EX}name> "Author {i}" .')
    for i in range(books):
        book = f"<{EX}book/{i}>"
        lines.append(f"{book} <{RDF_TYPE}> <{EX}Book> .")
        lines.append(f"{book} <{EX}has_author> <{EX}author/{i % authors}> .")
        lines.append(f'{book} <{EX}in_year> "{1990 + i % 15}"^^<{XSD_INT}> .')
        lines.append(f'{book} <{EX}isbn_no> "isbn-{i:04d}" .')
    return "\n".join(lines) + "\n"


SPARQL = f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . }}"
UPDATE = (f"INSERT DATA {{ <{EX}book/900> <{RDF_TYPE}> <{EX}Book> . "
          f"<{EX}book/900> <{EX}has_author> <{EX}author/0> . "
          f'<{EX}book/900> <{EX}in_year> "2013"^^<{XSD_INT}> . '
          f'<{EX}book/900> <{EX}isbn_no> "isbn-0900" . }}')

# one sample line: name, optional {labels}, value — format 0.0.4
SAMPLE_RE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[A-Za-z0-9_]+=\"(?:[^\"\\]|\\.)*\""
    r"(,[A-Za-z0-9_]+=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"(?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$")

MUST_BE_PRESENT = [
    "repro_query_seconds_bucket",
    "repro_queries_total",
    "repro_plan_cache_hits_total",
    "repro_plan_cache_misses_total",
    "repro_buffer_pool_page_hits_total",
    "repro_wal_appends_total",
    "repro_lock_wait_seconds_bucket",
    "repro_open_snapshots",
    "repro_pinned_delta_versions",
    "repro_server_requests_total",
    "repro_active_queries",
    "repro_queries_cancelled_total",
    "repro_event_log_entries",
]

MUST_BE_NONZERO = {
    'repro_queries_total{frontend="sparql"': 2.0,
    'repro_queries_total{frontend="sql"': 1.0,
    'repro_server_requests_total{kind="query"}': 2.0,
    'repro_server_requests_total{kind="sql"}': 1.0,
    'repro_server_requests_total{kind="update"}': 1.0,
    "repro_updates_total": 1.0,
    "repro_triples_inserted_total": 4.0,
    "repro_wal_appends_total": 1.0,
    "repro_buffer_pool_page_hits_total": 1.0,
    "repro_query_seconds_count": 3.0,
}


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{sample_line_lhs: value}``; raise on
    any line that is neither a comment nor a well-formed sample."""
    samples = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        if not SAMPLE_RE.match(line):
            raise AssertionError(f"unparseable exposition line: {line!r}")
        lhs, value = line.rsplit(" ", 1)
        samples[lhs] = float(value)
    return samples


def smoke_query_management() -> None:
    """Start a slow query, watch it in /queries, cancel it over HTTP."""
    # batch_size=1 keeps every next_batch call tiny: the cross-join star
    # (~books^2/authors rows) runs long enough to observe and cancel, and a
    # cancel lands within one (one-row) batch
    config = StoreConfig(
        discovery=DiscoveryConfig(
            generalization=GeneralizationConfig(min_support=3)),
        batch_size=1)
    store = RDFStore.build(book_nt(books=400, authors=4), config=config)
    slow_query = (f"SELECT ?b ?a ?b2 WHERE {{ ?b <{EX}has_author> ?a . "
                  f"?b2 <{EX}has_author> ?a . }}")
    with QueryServer(store, workers=2) as server:
        port = server.start_metrics_endpoint()
        url = f"http://127.0.0.1:{port}"
        future = server.submit_query(slow_query)

        entry = None
        for _ in range(2000):
            with urllib.request.urlopen(f"{url}/queries", timeout=10) as resp:
                queries = json.load(resp)["queries"]
            if queries:
                entry = queries[0]
                break
            time.sleep(0.005)
        assert entry is not None, "slow query never showed up in /queries"
        for key in ("id", "frontend", "scheme", "text", "elapsed_seconds",
                    "rows", "progress", "operator", "cancel_requested"):
            assert key in entry, f"/queries entry missing {key!r}: {entry}"
        assert entry["frontend"] == "sparql", entry

        with urllib.request.urlopen(
                f"{url}/queries/cancel?id={entry['id']}", timeout=10) as resp:
            payload = json.load(resp)
        assert payload == {"cancelled": True, "id": entry["id"]}, payload

        try:
            future.result(timeout=60)
            raise AssertionError("slow query finished despite cancellation")
        except QueryCancelledError as exc:
            assert exc.query_id == entry["id"], exc

    assert store.active_queries() == [], store.active_queries()
    assert store.open_snapshot_count() == 0, "cancel leaked a snapshot pin"
    types = [event["type"] for event in store.events()]
    for expected in ("query_start", "query_cancel", "query_finish"):
        assert expected in types, f"{expected} missing from event log: {types}"
    finish = store.events(type="query_finish", limit=1)[0]
    assert finish["status"] == "cancelled", finish
    print(f"query management smoke OK: slow query id={entry['id']} visible in "
          f"/queries, cancelled over HTTP, lifecycle in event log")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        config = StoreConfig(discovery=DiscoveryConfig(
            generalization=GeneralizationConfig(min_support=3)))
        store = RDFStore.build(book_nt(), config=config)
        store.save(Path(tmp) / "db")  # attach a WAL so updates are logged

        with QueryServer(store, workers=2) as server:
            port = server.start_metrics_endpoint()
            # mixed workload: 2 SPARQL (one repeated → plan-cache hit),
            # 1 SQL, 1 WAL-logged update
            server.submit_query(SPARQL).result()
            server.submit_query(SPARQL).result()
            server.submit_sql("SELECT isbn_no FROM Book ORDER BY isbn_no").result()
            server.submit_update(UPDATE).result()

            url = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
                assert resp.status == 200, resp.status
                ctype = resp.headers["Content-Type"]
                assert ctype.startswith("text/plain"), ctype
                body = resp.read().decode("utf-8")
            with urllib.request.urlopen(f"{url}/stats", timeout=10) as resp:
                stats = json.load(resp)
            assert stats["pending_inserts"] >= 4, stats
            assert "active_queries" in stats and "slow_queries" in stats, stats
            with urllib.request.urlopen(f"{url}/queries", timeout=10) as resp:
                assert json.load(resp)["queries"] == []  # workload has drained

        samples = parse_exposition(body)
        print(f"scraped {len(samples)} samples from /metrics on port {port}")

        for family in MUST_BE_PRESENT:
            assert any(lhs == family or lhs.startswith(family + "{")
                       for lhs in samples), f"metric family missing: {family}"

        for prefix, floor in MUST_BE_NONZERO.items():
            total = sum(v for lhs, v in samples.items()
                        if lhs == prefix or lhs.startswith(prefix))
            assert total >= floor, \
                f"{prefix}: expected >= {floor}, scraped {total}"

        hits = sum(v for lhs, v in samples.items()
                   if lhs.startswith("repro_plan_cache_hits_total"))
        assert hits >= 1, f"repeated query produced no plan-cache hit ({hits})"

    print("metrics smoke OK: exposition parses, core families present, "
          "workload counters nonzero")
    smoke_query_management()
    return 0


if __name__ == "__main__":
    sys.exit(main())
