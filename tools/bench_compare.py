#!/usr/bin/env python3
"""Diff two benchmark result sets and flag regressions.

Compares ``BENCH_<name>.json`` files written by
:class:`repro.bench.BenchReporter` — either two individual files or two
directories (every ``BENCH_*.json`` in the baseline directory is matched by
name against the candidate directory).  A measurement regresses when it
moved in its *worse* direction (per its recorded ``direction``) by more
than ``--threshold`` (relative, default 0.20 = 20%).

Exit codes:

* ``0`` — no regression beyond the threshold;
* ``1`` — at least one regression;
* ``2`` — usage error or schema mismatch (unreadable file, wrong
  ``schema_version``, no comparable measurements).

Stdlib-only on purpose: CI and developers run it without the package
installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1

# measurements noisier than a wall-clock median (sub-millisecond timings)
# whip around on shared runners; below this floor a relative comparison is
# meaningless, so such pairs are reported but never fail the gate
DEFAULT_NOISE_FLOOR_SECONDS = 1e-4


class CompareError(Exception):
    """Unusable input: missing file, bad JSON, wrong schema."""


def load_result(path: Path) -> dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CompareError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise CompareError(f"{path}: expected a JSON object")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CompareError(
            f"{path}: schema_version {version!r}, this tool understands "
            f"{SCHEMA_VERSION}")
    if not isinstance(document.get("measurements"), dict):
        raise CompareError(f"{path}: no measurements object")
    return document


def compare_documents(baseline: dict, candidate: dict,
                      threshold: float,
                      noise_floor: float = DEFAULT_NOISE_FLOOR_SECONDS):
    """Yield ``(name, base, cand, change, regressed)`` per shared measurement.

    ``change`` is the relative movement in the *worse* direction: positive
    means the candidate is worse than the baseline, however the measurement
    is oriented.
    """
    base_measurements = baseline["measurements"]
    cand_measurements = candidate["measurements"]
    for name in sorted(set(base_measurements) & set(cand_measurements)):
        base = base_measurements[name]
        cand = cand_measurements[name]
        base_value = float(base.get("value", 0.0))
        cand_value = float(cand.get("value", 0.0))
        if base_value == 0.0:
            continue  # nothing to take a ratio against
        change = (cand_value - base_value) / abs(base_value)
        if base.get("direction") == "higher_is_better":
            change = -change
        below_floor = (base.get("unit") == "seconds"
                       and max(abs(base_value), abs(cand_value)) < noise_floor)
        regressed = change > threshold and not below_floor
        yield name, base_value, cand_value, change, regressed


def collect_pairs(baseline: Path, candidate: Path):
    """Resolve the two arguments into ``(baseline_file, candidate_file)`` pairs."""
    if baseline.is_file() and candidate.is_file():
        return [(baseline, candidate)]
    if baseline.is_dir() and candidate.is_dir():
        pairs = []
        for base_file in sorted(baseline.glob("BENCH_*.json")):
            cand_file = candidate / base_file.name
            if cand_file.is_file():
                pairs.append((base_file, cand_file))
        if not pairs:
            raise CompareError(
                f"no BENCH_*.json present in both {baseline} and {candidate}")
        return pairs
    raise CompareError(
        f"{baseline} and {candidate} must both be files or both directories")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json result sets and flag regressions.")
    parser.add_argument("baseline", type=Path,
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("candidate", type=Path,
                        help="candidate BENCH_*.json file or directory")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression threshold (default 0.20)")
    parser.add_argument("--noise-floor", type=float,
                        default=DEFAULT_NOISE_FLOOR_SECONDS,
                        help="seconds-unit values below this never fail the "
                             "gate (default 1e-4)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared measurement, not only "
                             "regressions")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    try:
        pairs = collect_pairs(args.baseline, args.candidate)
        regressions = 0
        compared = 0
        for base_file, cand_file in pairs:
            base_doc = load_result(base_file)
            cand_doc = load_result(cand_file)
            for name, base_value, cand_value, change, regressed \
                    in compare_documents(base_doc, cand_doc, args.threshold,
                                         args.noise_floor):
                compared += 1
                if regressed:
                    regressions += 1
                if regressed or args.verbose:
                    marker = "REGRESSION" if regressed else "ok"
                    print(f"{marker:>10}  {base_doc['name']}/{name}: "
                          f"{base_value:.6g} -> {cand_value:.6g} "
                          f"({change:+.1%} worse-direction)")
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if compared == 0:
        print("error: no measurements in common", file=sys.stderr)
        return 2
    print(f"{compared} measurements compared across {len(pairs)} result "
          f"file(s); {regressions} regression(s) beyond "
          f"{args.threshold:.0%}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
