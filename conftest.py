"""Pytest bootstrap: make ``src/`` importable without installation.

The package is normally installed editable, but tests and benchmarks must
also run straight from a checkout (e.g. in offline CI images without a
working editable install), so the source tree is prepended to ``sys.path``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
