"""Pytest bootstrap: make ``src/`` importable without installation.

The package is normally installed editable, but tests and benchmarks must
also run straight from a checkout (e.g. in offline CI images without a
working editable install), so the source tree is prepended to ``sys.path``.

Setting ``REPRO_TEST_SHUFFLE_SEED`` shuffles the collected test order with
that seed (dependency-free equivalent of ``pytest-randomly``): CI runs a
seeded-shuffle job on every push to flush out order-dependent tests, and a
failure's header names the seed so the exact order reproduces locally::

    REPRO_TEST_SHUFFLE_SEED=12345 python -m pytest -q
"""

import os
import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

_SHUFFLE_SEED = os.environ.get("REPRO_TEST_SHUFFLE_SEED")


def pytest_collection_modifyitems(config, items):
    if not _SHUFFLE_SEED:
        return
    random.Random(int(_SHUFFLE_SEED)).shuffle(items)


def pytest_report_header(config):
    if _SHUFFLE_SEED:
        return f"repro: test order shuffled with seed {_SHUFFLE_SEED}"
    return None
